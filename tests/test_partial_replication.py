"""Tests for partial replication and multiple independent collaborations.

The paper's introduction requires the framework to support applications
where "the shared state may not be the entire application state" and where
"an application may engage in several independent collaborations ... each
collaboration may involve replication of a different subset of the
application state" (e.g., one with a financial planner, another with an
accountant).
"""

import pytest

from repro import Session
from repro import DInt


class TestPartialReplication:
    def test_private_state_never_propagates(self):
        session = Session.simulated(latency_ms=20)
        alice, bob = session.add_sites(2)
        shared = session.replicate(DInt, "shared", [alice, bob], initial=0)
        private = alice.create_int("private", 42)

        def body():
            private.set(private.get() + 1)
            shared[0].set(shared[0].get() + 1)

        alice.transact(body)
        session.settle()
        assert shared[1].get() == 1
        assert "s1:private" not in bob.objects  # never replicated
        assert private.get() == 43

    def test_independent_collaborations_per_application(self):
        """One app (site 1) shares X with the planner and Y with the
        accountant; planner never sees Y, accountant never sees X."""
        session = Session.simulated(latency_ms=20)
        app, planner, accountant = session.add_sites(3)
        xs = session.replicate(DInt, "portfolio", [app, planner], initial=100)
        ys = session.replicate(DInt, "taxes", [app, accountant], initial=50)

        def update_both():
            xs[0].set(110)
            ys[0].set(60)

        out = app.transact(update_both)
        session.settle()
        assert out.committed
        assert xs[1].get() == 110
        assert ys[1].get() == 60
        # Strict isolation of the two collaborations.
        assert not any("taxes" in uid for uid in planner.objects)
        assert not any("portfolio" in uid for uid in accountant.objects)

    def test_cross_collaboration_transaction_atomicity(self):
        """A transaction spanning two collaborations commits atomically or
        not at all — its primaries may live at different sites."""
        session = Session.simulated(latency_ms=40)
        app, planner, accountant = session.add_sites(3)
        xs = session.replicate(DInt, "x", [planner, app], initial=0)  # primary: planner
        ys = session.replicate(DInt, "y", [accountant, app], initial=0)  # primary: accountant
        # Contention on x: planner writes concurrently to force one retry.
        planner.transact(lambda: xs[0].set(xs[0].get() + 5))

        def spanning():
            xs[1].set(xs[1].get() + 1)
            ys[1].set(ys[1].get() + 1)

        out = app.transact(spanning)
        session.settle()
        assert out.committed
        assert xs[0].get() == xs[1].get() == 6
        assert ys[0].get() == ys[1].get() == 1

    def test_overlapping_replica_sets(self):
        """The section 5.1.3 topology: sets {0,1,2} and {2,3,4} overlap at
        site 2, which participates in both."""
        session = Session.simulated(latency_ms=20)
        sites = session.add_sites(5)
        left = session.replicate(DInt, "left", [sites[0], sites[1], sites[2]], initial=0)
        right = session.replicate(DInt, "right", [sites[2], sites[3], sites[4]], initial=0)

        def bridge():
            # Site 2 reads from one collaboration and writes the other.
            right[0].set(left[2].get() + 7)

        sites[2].transact(lambda: left[2].set(3))
        session.settle()
        out = sites[2].transact(bridge)
        session.settle()
        assert out.committed
        assert right[2].get() == 10
        assert left[0].get() == 3

    def test_different_functionality_per_application(self):
        """Sites share state but run different 'applications': one treats
        the object as a counter, the other as a high-water mark."""
        session = Session.simulated(latency_ms=20)
        a_site, b_site = session.add_sites(2)
        objs = session.replicate(DInt, "metric", [a_site, b_site], initial=0)

        def count_up():
            objs[0].set(objs[0].get() + 1)

        def record_peak(sample):
            if sample > objs[1].get():
                objs[1].set(sample)

        a_site.transact(count_up)
        session.settle()
        b_site.transact(lambda: record_peak(10))
        session.settle()
        a_site.transact(count_up)  # reads 10, writes 11
        session.settle()
        assert objs[0].get() == objs[1].get() == 11
