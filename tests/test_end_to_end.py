"""Capstone end-to-end scenario: a realistic collaborative session.

Mixes everything the framework provides in one long run: dynamic joins and
leaves, scalar and composite edits under contention, optimistic AND
pessimistic views, a checkpoint, a crash with recovery, and adaptive
optimism suppression — then checks global consistency.
"""

import pytest

from repro import Session, View
from repro.apps import ChatRoom, Whiteboard
from repro.core.adaptive import AdaptiveOptimismController
from repro.persist import checkpoint_to_json, restore_from_json
from repro import DInt, DList, DMap


def value(obj):
    return obj.value_at(obj.current_value_vt())


class AuditView(View):
    def __init__(self, obj):
        self.obj = obj
        self.states = []

    def update(self, changed, snapshot):
        self.states.append(snapshot.read(self.obj))


def test_full_collaborative_session():
    session = Session.simulated(latency_ms=30.0, seed=2024)
    host, editor, reviewer = session.add_sites(3, prefix="user")

    # --- Establish three shared artifacts --------------------------------
    counters = session.replicate(DInt, "revision", [host, editor, reviewer], initial=0)
    boards = session.replicate(DMap, "canvas", [host, editor, reviewer])
    logs = session.replicate(DList, "minutes", [host, editor, reviewer])
    session.settle()

    # Views: a pessimistic audit at the reviewer, optimistic everywhere else.
    audit = AuditView(counters[2])
    counters[2].attach(audit, "pessimistic")
    wb_host = Whiteboard(host, boards[0])
    wb_editor = Whiteboard(editor, boards[1])
    chat_host = ChatRoom(host, logs[0], author="host")
    chat_editor = ChatRoom(editor, logs[1], author="editor")

    # --- Phase 1: concurrent activity ------------------------------------
    controller = AdaptiveOptimismController(editor, window=8, enter_threshold=0.3)
    for round_no in range(6):
        host.transact(lambda: counters[0].set(counters[0].get() + 1))
        controller.transact(lambda: counters[1].set(counters[1].get() + 1))
        wb_host.draw("dot", round_no, 0, shape_id=f"h{round_no}")
        wb_editor.draw("dot", 0, round_no, shape_id=f"e{round_no}")
        chat_host.send(f"host round {round_no}")
        session.run_for(45.0)
    chat_editor.send("phase 1 done")
    session.settle()

    assert [value(c) for c in counters] == [12, 12, 12]
    assert value(boards[0]) == value(boards[1]) == value(boards[2])
    assert len(value(boards[0])) == 12
    assert chat_host.transcript() == chat_editor.transcript()
    # The pessimistic audit saw only committed, strictly advancing counts.
    numeric = [s for s in audit.states if isinstance(s, int)]
    assert numeric == sorted(numeric)
    assert numeric[-1] == 12

    # --- Phase 2: late joiner via invitation -----------------------------
    guest = session.add_site("guest")
    assoc = host.objects["s0:canvas.assoc"]
    guest_assoc = guest.import_invitation(assoc.make_invitation(), "canvas.assoc")
    session.settle()
    guest_board_obj = guest.create_map("canvas")
    out = guest.join(guest_assoc, "canvas.rel", guest_board_obj)
    session.settle()
    assert out.committed
    assert value(guest_board_obj) == value(boards[0])

    # --- Phase 3: checkpoint, crash, recover ------------------------------
    payload = checkpoint_to_json(editor)
    session.network.fail_site(editor.site_id)
    session.settle()
    # Survivors continue.
    host.transact(lambda: counters[0].set(counters[0].get() + 1))
    wb_host.draw("star", 9, 9, shape_id="after-crash")
    session.settle()
    assert value(counters[0]) == 13
    assert counters[2].get() == 13

    # The editor restarts with its checkpoint and rejoins the counter.
    editor2 = session.add_site("editor-restarted")
    restored = restore_from_json(editor2, payload)
    assert restored["revision"].get() == 12  # pre-crash committed state
    rev_assoc = host.objects["s0:revision.assoc"]
    editor2_assoc = editor2.import_invitation(rev_assoc.make_invitation(), "revision.assoc")
    session.settle()
    rejoin = editor2.join(editor2_assoc, "revision.rel", restored["revision"])
    session.settle()
    assert rejoin.committed
    assert restored["revision"].get() == 13  # reconciled missed update

    # --- Phase 4: the recovered site contributes again --------------------
    editor2.transact(lambda: restored["revision"].set(restored["revision"].get() + 1))
    session.settle()
    assert value(counters[0]) == 14
    assert counters[2].get() == 14
    assert audit.states[-1] == 14

    # --- Global hygiene ----------------------------------------------------
    for site in (host, reviewer, guest, editor2):
        assert not site.engine.pending_propagates
        assert not site.engine.deps.pending_vts()
    totals = session.counters()
    assert totals["commits"] > 30
