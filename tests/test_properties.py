"""Property-based tests of the protocol's core invariants (hypothesis).

Random operation scripts are generated and executed on the simulated
network with jittered latencies; afterwards we check the invariants the
paper's algorithms guarantee:

* **Convergence** — after quiescence, all replicas hold equal, committed
  values.
* **Serializability of read-modify-writes** — every committed increment
  takes effect exactly once (the RL/NC guesses really do serialize).
* **Pessimistic-view safety** — only committed values, losslessly, in
  monotonic order.
* **Quiescent cleanliness** — no pending propagations, dangling
  dependencies, or uncommitted history entries survive settle().
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import DInt, DList, DMap, Session, View
from repro.sim.network import UniformLatency

SETTINGS = settings(max_examples=25, deadline=None)


def build(n_sites, seed, kind=DInt):
    session = Session.simulated(latency_ms=40, seed=seed)
    session.network.default_latency = UniformLatency(5.0, 70.0)
    sites = session.add_sites(n_sites)
    objs = session.replicate(kind, "obj", sites, initial=0 if kind is DInt else None)
    session.settle()
    return session, sites, objs


def value(obj):
    return obj.value_at(obj.current_value_vt())


# One scripted action: (site index 0-2, action code, parameter, gap before).
action_st = st.tuples(
    st.integers(0, 2),
    st.integers(0, 2),
    st.integers(0, 100),
    st.floats(0.0, 120.0),
)


@SETTINGS
@given(script=st.lists(action_st, min_size=1, max_size=15), seed=st.integers(0, 9))
def test_scalar_scripts_converge_committed(script, seed):
    session, sites, objs = build(3, seed)
    for site_i, action, param, gap in script:
        session.run_for(gap)
        if action == 0:  # blind write
            sites[site_i].transact(lambda o=objs[site_i], v=param: o.set(v))
        elif action == 1:  # read-modify-write
            sites[site_i].transact(lambda o=objs[site_i]: o.set(o.get() + 1))
        else:  # read-only transaction
            sites[site_i].transact(lambda o=objs[site_i]: o.get())
    session.settle()
    values = [value(o) for o in objs]
    assert len(set(values)) == 1
    for obj in objs:
        assert obj.history.current().committed
    for site in sites:
        assert not site.engine.pending_propagates
        assert not site.engine.deps.pending_vts()


@SETTINGS
@given(
    increments=st.lists(st.integers(0, 2), min_size=1, max_size=12),
    seed=st.integers(0, 9),
)
def test_increments_apply_exactly_once(increments, seed):
    session, sites, objs = build(3, seed)
    rng = random.Random(seed)
    outcomes = []
    for site_i in increments:
        outcomes.append(
            sites[site_i].transact(lambda o=objs[site_i]: o.set(o.get() + 1))
        )
        session.run_for(rng.uniform(0, 100))
    session.settle()
    committed = sum(1 for o in outcomes if o.committed)
    assert committed == len(increments)  # retries drive everything through
    assert all(value(o) == committed for o in objs)


class _PessimisticRecorder(View):
    def __init__(self, obj):
        self.obj = obj
        self.seen = []

    def update(self, changed, snapshot):
        self.seen.append(snapshot.read(self.obj))


@SETTINGS
@given(
    script=st.lists(st.tuples(st.integers(0, 2), st.integers(0, 50)), min_size=1, max_size=10),
    seed=st.integers(0, 9),
)
def test_pessimistic_views_show_committed_prefix_in_order(script, seed):
    """Every value a pessimistic view shows must be a committed value, and
    blind writes from one site must appear in issue order (VT order)."""
    session, sites, objs = build(3, seed)
    recorders = []
    for i in range(3):
        rec = _PessimisticRecorder(objs[i])
        objs[i].attach(rec, "pessimistic")
        recorders.append(rec)
    issued = []
    rng = random.Random(seed)
    for site_i, _v in script:
        marker = (site_i + 1) * 10_000 + len(issued) + 1  # unique, nonzero
        issued.append(marker)
        sites[site_i].transact(lambda o=objs[site_i], m=marker: o.set(m))
        session.run_for(rng.uniform(0, 90))
    session.settle()
    final = value(objs[0])
    for rec in recorders:
        # 1. Everything shown was an issued (hence eventually committed)
        #    value, or the initial 0.
        assert all(v == 0 or v in issued for v in rec.seen)
        # 2. Lossless & monotonic: the view's last state is the final state.
        assert rec.seen[-1] == final
        # 3. No duplicates in sequence (each committed update shown once).
        for earlier, later in zip(rec.seen, rec.seen[1:]):
            assert earlier != later


@SETTINGS
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 1), st.integers(0, 2), st.integers(0, 99)),
        min_size=1,
        max_size=10,
    ),
    seed=st.integers(0, 5),
)
def test_map_scripts_converge(ops, seed):
    session, sites, maps = build(2, seed, kind=DMap)
    rng = random.Random(seed)
    keys = ["a", "b", "c"]
    for site_i, key_i, v in ops:
        key = keys[key_i]
        if v % 5 == 0:
            sites[site_i].transact(lambda m=maps[site_i], k=key: m.delete(k))
        else:
            sites[site_i].transact(
                lambda m=maps[site_i], k=key, vv=v: m.put(k, "int", vv)
            )
        session.run_for(rng.uniform(0, 80))
    session.settle()
    assert value(maps[0]) == value(maps[1])


@SETTINGS
@given(
    ops=st.lists(st.tuples(st.integers(0, 1), st.integers(0, 2)), min_size=1, max_size=8),
    seed=st.integers(0, 5),
)
def test_list_scripts_converge(ops, seed):
    session, sites, lists = build(2, seed, kind=DList)
    rng = random.Random(seed)
    counter = [0]
    for site_i, action in ops:
        lst = lists[site_i]

        def body(lst=lst, action=action):
            n = len(lst)
            if action == 0 or n == 0:
                counter[0] += 1
                lst.insert(rng.randrange(n + 1), "int", counter[0])
            elif action == 1:
                lst.remove(rng.randrange(n))
            else:
                lst.child_at(rng.randrange(n)).set(1000 + counter[0])

        sites[site_i].transact(body)
        session.run_for(rng.uniform(0, 120))
    session.settle()
    assert value(lists[0]) == value(lists[1])
    # Structure histories agree on commit status.
    assert lists[0].history.current().committed
    assert lists[1].history.current().committed
