"""Shared pytest configuration: deterministic Hypothesis profiles.

Two profiles are registered:

``ci``   fully deterministic — ``derandomize=True`` replays the same
         example sequence on every run, and ``deadline=None`` removes
         per-example wall-clock deadlines so a slow shared runner cannot
         flake an otherwise-passing property test.
``dev``  the default for local runs — randomized example generation
         (fresh seeds each run) so local testing keeps exploring new
         inputs, still without wall-clock deadlines.

Select with ``HYPOTHESIS_PROFILE=ci`` (the CI workflow sets this);
local runs default to ``dev``.
"""

import os

import pytest

try:
    from hypothesis import settings
except ImportError:  # pragma: no cover - hypothesis is optional locally
    settings = None

if settings is not None:
    settings.register_profile("ci", derandomize=True, deadline=None)
    settings.register_profile("dev", deadline=None)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

#: Per-test wall-clock defaults, enforced only where pytest-timeout is
#: installed (CI; the plugin is deliberately not a local requirement).  A
#: hung scheduler or a model-checking run that fails to converge should
#: fail its own test, not stall the whole suite.
DEFAULT_TIMEOUT_S = 120
SLOW_TIMEOUT_S = 600


def pytest_collection_modifyitems(config, items):
    if not config.pluginmanager.hasplugin("timeout"):
        return  # pytest-timeout absent (local run): markers are inert labels
    for item in items:
        if item.get_closest_marker("timeout") is None:
            limit = SLOW_TIMEOUT_S if item.get_closest_marker("slow") else DEFAULT_TIMEOUT_S
            item.add_marker(pytest.mark.timeout(limit))
