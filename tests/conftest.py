"""Shared pytest configuration: deterministic Hypothesis profiles.

Two profiles are registered:

``ci``   fully deterministic — ``derandomize=True`` replays the same
         example sequence on every run, and ``deadline=None`` removes
         per-example wall-clock deadlines so a slow shared runner cannot
         flake an otherwise-passing property test.
``dev``  the default for local runs — randomized example generation
         (fresh seeds each run) so local testing keeps exploring new
         inputs, still without wall-clock deadlines.

Select with ``HYPOTHESIS_PROFILE=ci`` (the CI workflow sets this);
local runs default to ``dev``.
"""

import os

try:
    from hypothesis import settings
except ImportError:  # pragma: no cover - hypothesis is optional locally
    settings = None

if settings is not None:
    settings.register_profile("ci", derandomize=True, deadline=None)
    settings.register_profile("dev", deadline=None)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
