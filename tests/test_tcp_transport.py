"""Tests for the real cross-process TCP transport.

Two in-process :class:`TcpTransport` instances on localhost stand in for two
OS processes (same codec framing, same sockets); the final test runs the
actual two-process example as a subprocess smoke check.
"""

import asyncio
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.messages import AbortMsg, CommitMsg, Envelope
from repro.errors import TransportError
from repro.transport.tcp import TcpTransport
from repro.vtime import VirtualTime

REPO = Path(__file__).resolve().parent.parent


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def two_addrs():
    return {0: ("127.0.0.1", free_port()), 1: ("127.0.0.1", free_port())}


async def wait_for(predicate, timeout_s: float = 10.0, what: str = "condition"):
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out waiting for {what}")
        await asyncio.sleep(0.01)


class TestTcpTransport:
    def test_delivery_and_fifo_between_transports(self):
        async def main():
            addrs = two_addrs()
            a = TcpTransport(addrs, local_sites={0})
            b = TcpTransport(addrs, local_sites={1})
            inbox = []
            a.register(0, lambda src, p: None)
            b.register(1, lambda src, p: inbox.append((src, p)))
            await a.start()
            await b.start()
            msgs = [CommitMsg(VirtualTime(i, 0), i) for i in range(20)]
            for m in msgs:
                a.send(0, 1, m)
            await wait_for(lambda: len(inbox) == len(msgs), what="all frames")
            assert [p for _, p in inbox] == msgs  # per-pair FIFO preserved
            assert all(src == 0 for src, _ in inbox)
            assert a.frames_sent == len(msgs)
            assert b.frames_received == len(msgs)
            await a.aquiesce(settle_ms=20.0)
            assert a.pending() == 0
            await a.stop()
            await b.stop()

        asyncio.run(main())

    def test_envelope_payload_crosses_the_wire(self):
        async def main():
            addrs = two_addrs()
            a = TcpTransport(addrs, local_sites={0})
            b = TcpTransport(addrs, local_sites={1})
            inbox = []
            b.register(1, lambda src, p: inbox.append(p))
            await a.start()
            await b.start()
            env = Envelope(
                (CommitMsg(VirtualTime(3, 0), 7), AbortMsg(VirtualTime(4, 0), 8, "x"))
            )
            a.send(0, 1, env)
            await wait_for(lambda: inbox, what="envelope")
            assert inbox[0] == env  # decoded copy, field-for-field equal
            assert inbox[0] is not env
            await a.stop()
            await b.stop()

        asyncio.run(main())

    def test_local_loopback_crosses_codec(self):
        async def main():
            addrs = two_addrs()
            t = TcpTransport(addrs, local_sites={0, 1})
            inbox = []
            t.register(1, lambda src, p: inbox.append(p))
            await t.start()
            msg = CommitMsg(VirtualTime(5, 0), 9)
            t.send(0, 1, msg)
            assert t.pending() == 1
            await wait_for(lambda: inbox, what="loopback delivery")
            assert inbox[0] == msg
            assert inbox[0] is not msg  # round-tripped through the codec
            await t.stop()

        asyncio.run(main())

    def test_reconnect_delivers_after_server_comes_up(self):
        async def main():
            addrs = two_addrs()
            a = TcpTransport(addrs, local_sites={0}, reconnect_base_ms=10.0)
            inbox = []
            await a.start()
            msg = CommitMsg(VirtualTime(1, 0), 1)
            a.send(0, 1, msg)  # nobody listening yet; frame stays queued
            await asyncio.sleep(0.1)
            assert a.pending() == 1
            b = TcpTransport(addrs, local_sites={1})
            b.register(1, lambda src, p: inbox.append(p))
            await b.start()
            await wait_for(lambda: inbox, what="delivery after reconnect")
            assert inbox == [msg]
            await a.stop()
            await b.stop()

        asyncio.run(main())

    def test_fail_stop_detection_notifies_listeners(self):
        async def main():
            addrs = two_addrs()
            a = TcpTransport(
                addrs, local_sites={0}, reconnect_base_ms=5.0, fail_after_ms=150.0
            )
            failed = []
            a.add_failure_listener(failed.append)
            await a.start()
            a.send(0, 1, CommitMsg(VirtualTime(1, 0), 1))  # port never answers
            await wait_for(lambda: failed, what="failure declaration")
            assert failed == [1]
            assert a.is_failed(1)
            assert a.pending() == 0  # queued frames dropped on failure
            a.send(0, 1, CommitMsg(VirtualTime(2, 0), 2))  # silently dropped
            assert a.pending() == 0
            await a.stop()

        asyncio.run(main())

    def test_sync_quiesce_raises_toward_aquiesce(self):
        transport = TcpTransport({0: ("127.0.0.1", 1)}, local_sites={0})
        with pytest.raises(TransportError, match="aquiesce"):
            transport.quiesce()

    def test_register_non_local_site_rejected(self):
        transport = TcpTransport(two_addrs(), local_sites={0})
        with pytest.raises(TransportError, match="not local"):
            transport.register(1, lambda src, p: None)

    def test_local_site_without_address_rejected(self):
        with pytest.raises(TransportError, match="no address"):
            TcpTransport({0: ("127.0.0.1", 1)}, local_sites={0, 1})

    def test_send_before_start_outside_loop_rejected(self):
        transport = TcpTransport(two_addrs(), local_sites={0})
        with pytest.raises(TransportError, match="event loop"):
            transport.send(0, 1, CommitMsg(VirtualTime(1, 0), 1))

    def test_stop_flushes_queued_frames(self):
        """stop() must not lose frames that are queued but not yet written.

        Regression for the coalescing write path: a burst of sends followed
        immediately by stop() races the per-peer sender task mid-batch; the
        flush phase of stop() has to wait for the queue to drain before
        closing the writers.
        """

        async def main():
            addrs = two_addrs()
            a = TcpTransport(addrs, local_sites={0})
            b = TcpTransport(addrs, local_sites={1})
            inbox = []
            b.register(1, lambda src, p: inbox.append(p))
            await a.start()
            await b.start()
            msgs = [CommitMsg(VirtualTime(i, 0), i) for i in range(200)]
            for m in msgs:
                a.send(0, 1, m)
            await a.stop()  # flush=True by default: must drain first
            assert a.pending() == 0
            await wait_for(lambda: len(inbox) == len(msgs), what="flushed frames")
            assert inbox == msgs  # nothing lost, FIFO preserved
            await b.stop()

        asyncio.run(main())

    def test_stop_rejects_sends_while_closing(self):
        async def main():
            addrs = two_addrs()
            a = TcpTransport(addrs, local_sites={0})
            await a.start()
            await a.stop()
            a.send(0, 1, CommitMsg(VirtualTime(1, 0), 1))  # silently dropped
            assert a.pending() == 0

        asyncio.run(main())

    def test_stop_flush_times_out_on_unreachable_peer(self):
        async def main():
            addrs = two_addrs()
            a = TcpTransport(addrs, local_sites={0}, reconnect_base_ms=5.0)
            await a.start()
            a.send(0, 1, CommitMsg(VirtualTime(1, 0), 1))  # nobody listening
            start = time.monotonic()
            await a.stop(flush_timeout_s=0.5)  # must not hang forever
            assert time.monotonic() - start < 5.0

        asyncio.run(main())

    def test_burst_coalesces_into_fewer_writes(self):
        async def main():
            addrs = two_addrs()
            a = TcpTransport(addrs, local_sites={0})
            b = TcpTransport(addrs, local_sites={1})
            inbox = []
            b.register(1, lambda src, p: inbox.append(p))
            await a.start()
            await b.start()
            # Establish the connection first so the burst queues behind a
            # live writer and the sender drains it in batches.
            probe = CommitMsg(VirtualTime(0, 0), 0)
            a.send(0, 1, probe)
            await wait_for(lambda: inbox, what="connection established")
            msgs = [CommitMsg(VirtualTime(i + 1, 0), i + 1) for i in range(500)]
            for m in msgs:
                a.send(0, 1, m)
            await wait_for(lambda: len(inbox) == len(msgs) + 1, what="burst")
            assert inbox == [probe] + msgs  # FIFO survives batching
            assert a.frames_sent == len(msgs) + 1
            assert a.writes < a.frames_sent  # batching actually happened
            assert a.frames_coalesced == a.frames_sent - a.writes
            assert a.frames_coalesced > 0
            await a.stop()
            await b.stop()

        asyncio.run(main())

    def test_maybe_install_uvloop_is_safe_without_uvloop(self):
        from repro.transport.tcp import maybe_install_uvloop

        assert maybe_install_uvloop() in (True, False)


class TestTransportTelemetry:
    def test_peer_transitions_fire_exactly_once_per_outage(self, tmp_path):
        """The backoff loop retries many times per outage; the transition
        events must be edge-triggered — one ``peer_unreachable`` and one
        ``peer_connected`` per outage, never one per dial attempt."""

        async def main():
            addrs = two_addrs()
            a = TcpTransport(
                addrs, local_sites={0}, reconnect_base_ms=5.0, fail_after_ms=60_000.0
            )
            a.bus.enable()
            inbox = []
            await a.start()

            def counts():
                return (
                    len(a.bus.filter(kind="peer_unreachable")),
                    len(a.bus.filter(kind="peer_connected")),
                )

            # Outage 1: peer not listening yet; several dials must fail.
            a.send(0, 1, CommitMsg(VirtualTime(1, 0), 1))
            await wait_for(
                lambda: a.metrics.value("transport.dial_failures") >= 3,
                what="several failed dial attempts",
            )
            assert counts() == (1, 0)

            b = TcpTransport(addrs, local_sites={1})
            b.register(1, lambda src, p: inbox.append(p))
            await b.start()
            await wait_for(lambda: len(inbox) == 1, what="delivery after outage 1")
            assert counts() == (1, 1)

            # Outage 2: the peer goes down again; a fresh transition pair.
            # A lone write to a freshly-dead connection can land in the
            # kernel buffer without error, so keep sending until the broken
            # pipe surfaces and the re-dial fails.
            await b.stop()
            for attempt in range(500):
                a.send(0, 1, CommitMsg(VirtualTime(2 + attempt, 0), 2))
                if counts()[0] == 2:
                    break
                await asyncio.sleep(0.01)
            assert counts()[0] == 2
            b2 = TcpTransport(addrs, local_sites={1})
            b2.register(1, lambda src, p: inbox.append(p))
            await b2.start()
            await wait_for(lambda: counts()[1] == 2, what="second reconnect")
            assert counts() == (2, 2)
            assert a.metrics.value("transport.peer_unreachable") == 2
            assert a.metrics.value("transport.reconnects") >= 1
            connected = a.bus.filter(kind="peer_connected")
            assert all(e.data["peer"] == 1 for e in connected)

            await a.stop()
            await b2.stop()

        asyncio.run(main())

    def test_traced_events_pair_across_transports(self):
        async def main():
            addrs = two_addrs()
            a = TcpTransport(addrs, local_sites={0})
            b = TcpTransport(addrs, local_sites={1})
            a.bus.enable()
            b.bus.enable()
            inbox = []
            a.register(0, lambda src, p: None)
            b.register(1, lambda src, p: inbox.append(p))
            await a.start()
            await b.start()
            for i in range(5):
                a.send(0, 1, CommitMsg(VirtualTime(i + 1, 0), i))
            await wait_for(lambda: len(inbox) == 5, what="all deliveries")
            sent = a.bus.filter(kind="message_sent")
            delivered = b.bus.filter(kind="message_delivered")
            assert [e.data["msg_id"] for e in sent] == [f"0:{i + 1}" for i in range(5)]
            # Every delivery pairs with its send — the cross-process
            # happens-before edges the merged timeline reconstructs.
            assert [e.data["msg_id"] for e in delivered] == [
                e.data["msg_id"] for e in sent
            ]
            assert all(e.data["msg_type"] == "CommitMsg" for e in delivered)
            assert all(str(e.txn_vt) == f"VT({i + 1}@0)" for i, e in enumerate(sent))
            await a.stop()
            await b.stop()

        asyncio.run(main())

    def test_untraced_transports_emit_nothing(self):
        async def main():
            addrs = two_addrs()
            a = TcpTransport(addrs, local_sites={0})
            b = TcpTransport(addrs, local_sites={1})
            inbox = []
            b.register(1, lambda src, p: inbox.append(p))
            await a.start()
            await b.start()
            a.send(0, 1, CommitMsg(VirtualTime(1, 0), 1))
            await wait_for(lambda: inbox, what="delivery")
            # Functional zero-overhead guard: no emission machinery entered.
            assert a.bus._seq == 0 and b.bus._seq == 0
            assert len(a.bus) == 0 and len(b.bus) == 0
            await a.stop()
            await b.stop()

        asyncio.run(main())

    def test_fail_stop_dumps_flight_recorder(self, tmp_path):
        from repro.obs import FlightRecorder

        async def main():
            addrs = two_addrs()
            a = TcpTransport(
                addrs, local_sites={0}, reconnect_base_ms=5.0, fail_after_ms=100.0
            )
            a.flight = FlightRecorder(str(tmp_path / "flight0.jsonl")).attach(a.bus)
            failed = []
            a.add_failure_listener(failed.append)
            await a.start()
            a.send(0, 1, CommitMsg(VirtualTime(1, 0), 1))  # port never answers
            await wait_for(lambda: failed, what="fail-stop declaration")
            assert a.flight.dumps == 1
            dump = (tmp_path / "flight0.jsonl").read_text().splitlines()
            import json

            header = json.loads(dump[0])
            assert header["flight"] == "repro-flight/1"
            assert "fail-stop: site 1" in header["reason"]
            # The ring captured the transition events leading up to it.
            kinds = {json.loads(line)["kind"] for line in dump[1:]}
            assert "peer_unreachable" in kinds
            await a.stop()

        asyncio.run(main())


class TestTwoProcessExample:
    def test_two_process_example_converges(self):
        """The CI smoke: two OS processes converge over real TCP."""
        result = subprocess.run(
            [sys.executable, str(REPO / "examples" / "two_process_tcp.py")],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "OK: both processes converged" in result.stdout
        assert "identical state digests" in result.stdout
