"""Tests for the streaming health detectors (repro.obs.health).

Each rule is exercised on synthetic event sequences (rising-edge firing,
re-arming, per-key dedup, end-of-stream flush), and the acceptance
criteria are pinned: over an explorer campaign with injected faults the
straggler-cascade and notify-lag detectors fire deterministically — the
same seed yields an identical HealthReport — and a monitor subscribed
live to the bus produces byte-identical findings to an offline replay of
the recorded timeline.
"""

import json

from repro.explore.plan import sample_config
from repro.explore.trial import run_trial
from repro.obs import run_health
from repro.obs.events import ProtocolEvent
from repro.obs.health import (
    AbortRateBurnRate,
    AbortRateSpike,
    HealthMonitor,
    NotifyLagBurnRate,
    NotifyLagSLO,
    RepairStall,
    StragglerCascade,
    burn_rules,
    default_rules,
)
from repro.vtime import VirtualTime


def make_event(seq, time_ms, site, event_kind, vt=None, **data):
    # The event's own kind is positional so data payloads may carry a
    # "kind" key of their own (view_notified's kind=update/commit).
    return ProtocolEvent(
        seq=seq, time_ms=float(time_ms), site=site, kind=event_kind, txn_vt=vt, data=data
    )


def feed(rule, events):
    findings = []
    for event in events:
        findings.extend(rule.observe(event))
    return findings


class TestAbortRateSpike:
    def _resolution(self, seq, time_ms, counter, aborted):
        vt = VirtualTime(counter, 0)
        kind = "aborted" if aborted else "committed"
        return make_event(seq, time_ms, 0, kind, vt)

    def test_fires_on_rising_edge_only(self):
        rule = AbortRateSpike(window_ms=1000.0, min_resolutions=4, threshold=0.5)
        events = [self._resolution(i, 10.0 * i, i, aborted=True) for i in range(8)]
        findings = feed(rule, events)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "abort_rate_spike"
        assert finding.severity == "critical"
        assert finding.data["rate"] == 1.0
        assert finding.seq == 3  # the event that completed the window

    def test_rearms_after_recovery(self):
        rule = AbortRateSpike(window_ms=100.0, min_resolutions=4, threshold=0.5)
        spike1 = [self._resolution(i, float(i), i, aborted=True) for i in range(4)]
        # Recovery: a burst of commits in a later window drives the rate to 0.
        recovery = [
            self._resolution(10 + i, 500.0 + i, 10 + i, aborted=False)
            for i in range(6)
        ]
        spike2 = [
            self._resolution(20 + i, 1000.0 + i, 20 + i, aborted=True)
            for i in range(4)
        ]
        findings = feed(rule, spike1 + recovery + spike2)
        assert len(findings) == 2

    def test_ignores_replica_resolutions(self):
        rule = AbortRateSpike(window_ms=1000.0, min_resolutions=2, threshold=0.5)
        # Same VTs aborting at a *replica* site (site != vt.site) don't count.
        events = [
            make_event(i, 10.0 * i, 1, "aborted", VirtualTime(i, 0)) for i in range(6)
        ]
        assert feed(rule, events) == []


class TestStragglerCascade:
    def test_depth_threshold_and_rearm(self):
        rule = StragglerCascade(window_ms=100.0, depth=3)
        burst = [
            make_event(i, float(i), 0, "straggler_detected", VirtualTime(i, 1),
                       flavor="lost_update", mode="optimistic")
            for i in range(5)
        ]
        findings = feed(rule, burst)
        assert len(findings) == 1
        assert findings[0].data["depth"] == 3
        assert len(findings[0].data["vts"]) == 3

        # After the window drains completely the rule re-arms.
        later = [
            make_event(10 + i, 1000.0 + i, 0, "straggler_detected",
                       VirtualTime(10 + i, 1), flavor="lost_update",
                       mode="optimistic")
            for i in range(3)
        ]
        assert len(feed(rule, later)) == 1

    def test_sparse_stragglers_never_fire(self):
        rule = StragglerCascade(window_ms=100.0, depth=3)
        sparse = [
            make_event(i, 500.0 * i, 0, "straggler_detected", VirtualTime(i, 1),
                       flavor="lost_update", mode="optimistic")
            for i in range(10)
        ]
        assert feed(rule, sparse) == []


class TestNotifyLagSLO:
    def test_fires_once_per_site_vt_pair(self):
        rule = NotifyLagSLO(slo_ms=100.0)
        vt = VirtualTime(3, 0)
        events = [
            make_event(0, 0.0, 0, "committed", vt, ops=1),
            make_event(1, 250.0, 1, "view_notified", vt, mode="pessimistic",
                       kind="commit", changed=1),
            make_event(2, 260.0, 1, "view_notified", vt, mode="pessimistic",
                       kind="commit", changed=1),  # same pair: deduped
            make_event(3, 270.0, 2, "view_notified", vt, mode="pessimistic",
                       kind="commit", changed=1),  # new site: fires again
        ]
        findings = feed(rule, events)
        assert [f.site for f in findings] == [1, 2]
        assert findings[0].data["lag_ms"] == 250.0

    def test_within_slo_and_optimistic_ignored(self):
        rule = NotifyLagSLO(slo_ms=100.0)
        vt = VirtualTime(3, 0)
        events = [
            make_event(0, 0.0, 0, "committed", vt, ops=1),
            make_event(1, 50.0, 1, "view_notified", vt, mode="pessimistic",
                       kind="commit", changed=1),
            make_event(2, 500.0, 1, "view_notified", vt, mode="optimistic",
                       kind="update", changed=1),
        ]
        assert feed(rule, events) == []


class TestRepairStall:
    def test_stall_detected_in_stream(self):
        rule = RepairStall(threshold_ms=1000.0)
        events = [
            make_event(0, 0.0, 2, "failure_notice", failed_site=1),
            make_event(1, 1500.0, 2, "committed", VirtualTime(5, 2), ops=1),
        ]
        findings = feed(rule, events)
        assert len(findings) == 1
        assert findings[0].rule == "repair_stall"
        assert findings[0].data["failed_site"] == 1
        assert findings[0].data["stall_ms"] == 1500.0

    def test_timely_repair_suppresses(self):
        rule = RepairStall(threshold_ms=1000.0)
        events = [
            make_event(0, 0.0, 2, "failure_notice", failed_site=1),
            make_event(1, 300.0, 2, "repair_committed", method="consensus",
                       failed_site=1),
            make_event(2, 5000.0, 2, "committed", VirtualTime(5, 2), ops=1),
        ]
        assert feed(rule, events) == []
        assert rule.finish(5000.0) == []

    def test_finish_flushes_open_repairs(self):
        rule = RepairStall(threshold_ms=1000.0)
        assert feed(rule, [make_event(0, 0.0, 2, "failure_notice", failed_site=1)]) == []
        findings = rule.finish(100.0)
        assert len(findings) == 1
        assert findings[0].data["failed_site"] == 1


class TestBurnRateRules:
    def _resolution(self, seq, time_ms, counter, aborted):
        vt = VirtualTime(counter, 0)
        kind = "aborted" if aborted else "committed"
        return make_event(seq, time_ms, 0, kind, vt)

    def test_sustained_abort_burn_fires_once(self):
        rule = AbortRateBurnRate()
        # 50% aborts sustained: burn 5.0x of the 10% budget in both windows.
        events = [
            self._resolution(i, 50.0 * i, i, aborted=(i % 2 == 0)) for i in range(40)
        ]
        findings = feed(rule, events)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "abort_rate_burn_rate"
        assert finding.severity == "critical"
        assert finding.data["fast_burn"] >= 3.0
        assert finding.data["slow_burn"] >= 3.0
        assert finding.data["objective"] == 0.90

    def test_short_burst_is_absorbed_by_the_slow_window(self):
        rule = AbortRateBurnRate()
        healthy = [self._resolution(i, 50.0 * i, i, aborted=False) for i in range(39)]
        burst = [
            self._resolution(40 + i, 1910.0 + 10.0 * i, 40 + i, aborted=True)
            for i in range(8)
        ]
        # Fast window burns hot, but the slow window says the budget is
        # fine overall — no page for one transient burst.
        assert feed(rule, healthy + burst) == []

    def test_rearms_after_burn_stops(self):
        rule = AbortRateBurnRate()
        spike1 = [self._resolution(i, 50.0 * i, i, aborted=True) for i in range(10)]
        recovery = [
            self._resolution(20 + i, 1000.0 + 50.0 * i, 20 + i, aborted=False)
            for i in range(19)
        ]
        spike2 = [
            self._resolution(50 + i, 3000.0 + 50.0 * i, 50 + i, aborted=True)
            for i in range(10)
        ]
        findings = feed(rule, spike1 + recovery + spike2)
        assert len(findings) == 2

    def test_min_events_guards_small_samples(self):
        rule = AbortRateBurnRate()  # min_events=8
        events = [self._resolution(i, 50.0 * i, i, aborted=True) for i in range(7)]
        assert feed(rule, events) == []

    def test_replica_resolutions_ignored(self):
        rule = AbortRateBurnRate()
        events = [
            make_event(i, 50.0 * i, 1, "aborted", VirtualTime(i, 0)) for i in range(20)
        ]
        assert feed(rule, events) == []

    def _notify_pair(self, seq, counter, commit_ms, lag_ms):
        vt = VirtualTime(counter, 0)
        return [
            make_event(seq, commit_ms, 0, "committed", vt, ops=1),
            make_event(seq + 1, commit_ms + lag_ms, 1, "view_notified", vt,
                       mode="pessimistic", kind="commit", changed=1),
        ]

    def test_sustained_notify_lag_burn_fires(self):
        rule = NotifyLagBurnRate(slo_ms=120.0)
        events = []
        for i in range(10):
            events.extend(self._notify_pair(2 * i, i, 100.0 * i, lag_ms=200.0))
        findings = feed(rule, events)
        assert len(findings) == 1
        assert findings[0].rule == "notify_lag_burn_rate"

    def test_within_slo_notifications_never_fire(self):
        rule = NotifyLagBurnRate(slo_ms=120.0)
        events = []
        for i in range(10):
            events.extend(self._notify_pair(2 * i, i, 100.0 * i, lag_ms=50.0))
        assert feed(rule, events) == []

    def test_notification_without_recorded_commit_is_ignored(self):
        rule = NotifyLagBurnRate(slo_ms=120.0)
        vt = VirtualTime(1, 0)
        event = make_event(0, 500.0, 1, "view_notified", vt,
                           mode="pessimistic", kind="commit", changed=1)
        assert rule.observe(event) == []

    def test_burn_rules_factory_and_default_rules_unchanged(self):
        rules = burn_rules(notify_slo_ms=99.0, abort_objective=0.8)
        assert [type(r) for r in rules] == [NotifyLagBurnRate, AbortRateBurnRate]
        assert rules[0].slo_ms == 99.0
        assert rules[1].objective == 0.8
        # Burn rules are opt-in: default reports stay byte-stable.
        assert [type(r).__name__ for r in default_rules()] == [
            "AbortRateSpike", "StragglerCascade", "NotifyLagSLO", "RepairStall",
        ]

    def test_live_equals_replay_with_burn_rules(self):
        events = [
            self._resolution(i, 50.0 * i, i, aborted=(i % 2 == 0)) for i in range(40)
        ]
        live = HealthMonitor(burn_rules())
        for event in events:
            live(event)
        offline = run_health(events, rules=burn_rules())
        assert live.report().to_json() == offline.to_json()
        assert offline.by_rule().get("abort_rate_burn_rate") == 1

    def test_health_cli_burn_rate_flag_is_deterministic(self, capsys):
        from repro.cli import main

        outputs = []
        for _run in range(2):
            code = main(["health", "--seed", "0", "--trials", "1", "--json",
                         "--burn-rate"])
            assert code in (0, 1)
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        json.loads(outputs[0])  # well-formed report


class TestHealthMonitorDeterminism:
    def test_live_subscription_equals_offline_replay(self):
        """A monitor subscribed live to the bus and an offline run over the
        recorded timeline produce byte-identical reports."""
        config = sample_config(0, 0, mutations=(), faults=True)
        live = HealthMonitor()
        result = run_trial(config, observe=True, subscribers=(live,))
        live_report = live.report()
        offline_report = run_health(result.events)
        assert live_report.to_json() == offline_report.to_json()

    def test_campaign_with_faults_fires_detectors_deterministically(self):
        """Acceptance: over an explorer campaign with injected faults the
        straggler-cascade and notify-lag detectors fire, and the same seed
        yields an identical HealthReport."""
        reports = []
        for _run in range(2):
            fired = {}
            for index in range(6):
                config = sample_config(0, index, mutations=(), faults=True)
                monitor = HealthMonitor()
                run_trial(config, subscribers=(monitor,))
                fired[index] = monitor.report().to_json()
            reports.append(fired)
        assert reports[0] == reports[1]
        all_rules = set()
        for report_json in reports[0].values():
            report = json.loads(report_json)
            all_rules.update(report["by_rule"])
        assert "straggler_cascade" in all_rules
        assert "notify_lag_slo" in all_rules

    def test_report_shape_and_status(self):
        config = sample_config(0, 0, mutations=(), faults=True)
        monitor = HealthMonitor()
        run_trial(config, subscribers=(monitor,))
        report = monitor.report()
        doc = report.to_dict()
        assert doc["format"] == "repro-health/1"
        assert doc["status"] in ("ok", "info", "warning", "critical")
        assert doc["events_seen"] == report.events_seen > 0
        assert sum(doc["by_rule"].values()) == len(doc["findings"])
        text = report.format_text()
        assert text.startswith("health:")

    def test_monitor_finish_is_idempotent(self):
        monitor = HealthMonitor([RepairStall(threshold_ms=1000.0)])
        monitor.observe(make_event(0, 0.0, 2, "failure_notice", failed_site=1))
        first = monitor.report()
        second = monitor.report()
        assert first.to_json() == second.to_json()
        assert len(first.findings) == 1


class TestHealthCli:
    def test_health_command_fires_and_is_deterministic(self, capsys):
        from repro.cli import main

        outputs = []
        for _run in range(2):
            code = main(["health", "--seed", "0", "--trials", "1", "--json"])
            assert code == 1  # findings present
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        doc = json.loads(outputs[0])
        assert doc["status"] in ("warning", "critical")
        assert doc["findings"] > 0
        rules = set()
        for report in doc["reports"]:
            rules.update(report["by_rule"])
        assert "straggler_cascade" in rules or "notify_lag_slo" in rules

    def test_health_quiet_text_mode(self, capsys):
        from repro.cli import main

        code = main(["health", "--seed", "0", "--trials", "1", "--quiet"])
        out = capsys.readouterr().out
        assert code == 1
        # Quiet mode skips the summary line but still lists findings.
        assert not out.startswith("health:")
        assert "trial 0:" in out
