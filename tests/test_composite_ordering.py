"""Unit-level convergence tests for composite apply ordering.

These drive ``apply_insert``/``apply_remove``/``apply_put`` directly, in
different arrival orders, to verify the placement rules (predecessor
identity + RGA skip) are order-insensitive — the property the integration
tests rely on when stragglers interleave.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro import Session
from repro.core.messages import SlotId
from repro.vtime import VirtualTime


def vt(counter, site=0):
    return VirtualTime(counter, site)


def fresh_list(name="l"):
    site = Session().add_site(name + "-site")
    return site.create_list(name)


def fresh_map(name="m"):
    site = Session().add_site(name + "-site")
    return site.create_map(name)


def contents(lst):
    return lst.value_at(lst.current_value_vt())


class TestListPlacement:
    def test_chain_appends(self):
        lst = fresh_list()
        s1 = SlotId(vt(1), 0)
        s2 = SlotId(vt(2), 0)
        lst.apply_insert(s1, None, ("int", 1))
        lst.apply_insert(s2, s1, ("int", 2))
        assert contents(lst) == [1, 2]

    def test_same_predecessor_orders_by_slot_id_desc(self):
        """RGA rule: siblings after the same predecessor sort by descending
        SlotId, so later (concurrent) inserts come first."""
        a = fresh_list("a")
        b = fresh_list("b")
        head = SlotId(vt(1), 0)
        x = SlotId(vt(5), 1)
        y = SlotId(vt(7), 2)
        for lst, order in ((a, (x, y)), (b, (y, x))):
            lst.apply_insert(head, None, ("int", 0))
            for slot in order:
                lst.apply_insert(slot, head, ("string", f"s{slot.vt.counter}"))
        assert contents(a) == contents(b) == [0, "s7", "s5"]

    def test_all_arrival_orders_converge(self):
        """Three inserts with a dependency chain: every arrival order that
        respects resolvability yields the same sequence."""
        head = SlotId(vt(1), 0)
        mid = SlotId(vt(3), 1)
        tail = SlotId(vt(5), 2)
        ops = [
            (head, None, ("int", 1)),
            (mid, head, ("int", 2)),
            (tail, mid, ("int", 3)),
        ]
        results = set()
        for perm in itertools.permutations(ops):
            lst = fresh_list()
            pending = list(perm)
            # Apply with retry-on-missing-predecessor, like the engine does.
            while pending:
                progressed = False
                for op in list(pending):
                    try:
                        lst.apply_insert(*op)
                        pending.remove(op)
                        progressed = True
                    except Exception:
                        continue
                assert progressed, "deadlocked on missing predecessor"
            results.add(tuple(contents(lst)))
        assert results == {(1, 2, 3)}

    def test_remove_then_insert_after_tombstone(self):
        """Tombstones keep ordering stable: an insert after a removed slot
        still lands in the right place."""
        lst = fresh_list()
        s1 = SlotId(vt(1), 0)
        s2 = SlotId(vt(2), 0)
        lst.apply_insert(s1, None, ("int", 1))
        lst.apply_insert(s2, s1, ("int", 2))
        lst.apply_remove(vt(3), s1)
        # A concurrent site inserted after s1 before learning of the remove.
        s3 = SlotId(vt(4), 1)
        lst.apply_insert(s3, s1, ("int", 99))
        assert contents(lst) == [99, 2]

    def test_duplicate_insert_rejected(self):
        from repro.errors import ProtocolError

        lst = fresh_list()
        s1 = SlotId(vt(1), 0)
        lst.apply_insert(s1, None, ("int", 1))
        with pytest.raises(ProtocolError):
            lst.apply_insert(s1, None, ("int", 1))

    def test_missing_predecessor_raises_invalid_path(self):
        from repro.errors import InvalidPath

        lst = fresh_list()
        with pytest.raises(InvalidPath):
            lst.apply_insert(SlotId(vt(2), 0), SlotId(vt(1), 0), ("int", 1))

    def test_missing_remove_target_raises(self):
        from repro.errors import InvalidPath

        lst = fresh_list()
        with pytest.raises(InvalidPath):
            lst.apply_remove(vt(2), SlotId(vt(1), 0))

    @settings(max_examples=30, deadline=None)
    @given(
        seqs=st.permutations(list(range(5))),
    )
    def test_append_chain_any_order(self, seqs):
        """A five-element append chain applied in any resolvable order
        converges to the same list."""
        slots = [SlotId(vt(i + 1), 0) for i in range(5)]
        ops = [
            (slots[i], slots[i - 1] if i else None, ("int", i)) for i in range(5)
        ]
        lst = fresh_list()
        pending = [ops[i] for i in seqs]
        while pending:
            for op in list(pending):
                try:
                    lst.apply_insert(*op)
                    pending.remove(op)
                except Exception:
                    continue
        assert contents(lst) == [0, 1, 2, 3, 4]


class TestMapOrdering:
    def test_lww_regardless_of_arrival(self):
        a = fresh_map("a")
        b = fresh_map("b")
        early, late = vt(5, 0), vt(9, 1)
        a.apply_put(early, "k", ("int", 1))
        a.apply_put(late, "k", ("int", 2))
        b.apply_put(late, "k", ("int", 2))
        b.apply_put(early, "k", ("int", 1))
        assert a.value_at(a.current_value_vt()) == b.value_at(b.current_value_vt()) == {"k": 2}

    def test_delete_vs_put_by_vt(self):
        m = fresh_map()
        m.apply_put(vt(5), "k", ("int", 1))
        m.apply_delete(vt(9), "k")
        assert m.value_at(m.current_value_vt()) == {}
        m2 = fresh_map("m2")
        m2.apply_delete(vt(5), "k")
        m2.apply_put(vt(9), "k", ("int", 1))
        assert m2.value_at(m2.current_value_vt()) == {"k": 1}

    def test_straggler_put_visible_at_its_vt(self):
        m = fresh_map()
        m.apply_put(vt(9), "k", ("int", 2))
        m.apply_put(vt(5), "k", ("int", 1))  # straggler
        assert m.value_at(vt(7)) == {"k": 1}
        assert m.value_at(vt(9)) == {"k": 2}
