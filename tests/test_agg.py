"""Windowed per-tenant aggregation (repro.obs.agg).

Covers the tumbling-window bucketing and eviction, snapshot shape and
byte-stability, the cross-process merge laws (the ``repro top`` fusion
path), and the event-bus adapter that derives per-tenant commit/abort/
latency series from protocol lifecycle events.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.agg import (
    AGG_FORMAT,
    TelemetryAggregator,
    TenantTelemetry,
    merge_agg_snapshots,
)
from repro.obs.events import ProtocolEvent
from repro.vtime import VirtualTime


def make_event(seq, time_ms, site, event_kind, vt=None, **data):
    return ProtocolEvent(
        seq=seq, time_ms=float(time_ms), site=site, kind=event_kind, txn_vt=vt, data=data
    )


class TestWindowing:
    def test_events_land_in_their_time_window(self):
        agg = TelemetryAggregator(window_ms=100.0)
        agg.inc("t", "commits", 50.0)
        agg.inc("t", "commits", 150.0)
        agg.inc("t", "commits", 199.0)
        snap = agg.snapshot()
        assert [w["index"] for w in snap["windows"]] == [0, 1]
        assert snap["windows"][0]["tenants"]["t"]["counters"]["commits"] == 1
        assert snap["windows"][1]["tenants"]["t"]["counters"]["commits"] == 2
        assert snap["windows"][1]["start_ms"] == 100.0
        assert snap["windows"][1]["end_ms"] == 200.0

    def test_old_windows_evict_fifo(self):
        agg = TelemetryAggregator(window_ms=10.0, keep_windows=3)
        for i in range(10):
            agg.inc("t", "commits", i * 10.0)
        snap = agg.snapshot()
        assert [w["index"] for w in snap["windows"]] == [7, 8, 9]

    def test_sketch_observations_produce_quantiles(self):
        agg = TelemetryAggregator(window_ms=1000.0)
        for v in range(1, 101):
            agg.observe("t", "latency_ms", 0.0, float(v))
        cell = agg.snapshot()["windows"][0]["tenants"]["t"]
        q = cell["quantiles"]["latency_ms"]
        assert q["p50"] == pytest.approx(50.0, rel=0.02)
        assert q["p99"] == pytest.approx(99.0, rel=0.02)
        assert cell["sketches"]["latency_ms"]["total"] == 100

    def test_tenants_are_isolated(self):
        agg = TelemetryAggregator()
        agg.inc("a", "commits", 0.0, 3)
        agg.inc("b", "commits", 0.0, 5)
        tenants = agg.snapshot()["windows"][0]["tenants"]
        assert tenants["a"]["counters"]["commits"] == 3
        assert tenants["b"]["counters"]["commits"] == 5
        assert agg.tenants() == ["a", "b"]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TelemetryAggregator(window_ms=0.0)
        with pytest.raises(ValueError):
            TelemetryAggregator(keep_windows=0)

    def test_to_json_is_byte_stable(self):
        def build():
            agg = TelemetryAggregator(window_ms=100.0, site=2)
            agg.inc("b", "commits", 10.0)
            agg.inc("a", "commits", 20.0)
            agg.observe("a", "lat", 30.0, 5.0)
            return agg.to_json()

        assert build() == build()
        doc = json.loads(build())
        assert doc["format"] == AGG_FORMAT
        assert doc["site"] == 2


class TestMergeSnapshots:
    def build(self, site, pairs):
        agg = TelemetryAggregator(window_ms=100.0, site=site)
        for tenant, time_ms, latency in pairs:
            agg.inc(tenant, "commits", time_ms)
            agg.observe(tenant, "lat", time_ms, latency)
        return agg.snapshot()

    def test_counters_add_and_sketches_merge(self):
        merged = merge_agg_snapshots(
            self.build(0, [("t", 10.0, 5.0), ("t", 20.0, 7.0)]),
            self.build(1, [("t", 30.0, 9.0), ("u", 40.0, 1.0)]),
        )
        window = merged["windows"][0]["tenants"]
        assert window["t"]["counters"]["commits"] == 3
        assert window["t"]["sketches"]["lat"]["total"] == 3
        assert window["u"]["counters"]["commits"] == 1

    def test_merge_equals_single_aggregator(self):
        # Split one stream across two sites: the merge must equal the
        # snapshot of one aggregator that saw everything.
        stream = [(f"t{i % 3}", i * 7.0, float(i + 1)) for i in range(60)]
        merged = merge_agg_snapshots(
            self.build(0, stream[0::2]), self.build(1, stream[1::2])
        )
        expected = self.build(-1, stream)
        assert merged["windows"] == expected["windows"]

    @settings(max_examples=30)
    @given(st.permutations(list(range(4))))
    def test_merge_is_order_insensitive(self, order):
        snaps = [
            self.build(s, [(f"t{s}", s * 25.0, float(s + 1)), ("shared", 10.0, 2.0)])
            for s in range(4)
        ]
        baseline = merge_agg_snapshots(*snaps)
        shuffled = merge_agg_snapshots(*[snaps[i] for i in order])
        assert shuffled["windows"] == baseline["windows"]

    def test_merge_empty_input(self):
        merged = merge_agg_snapshots()
        assert merged["windows"] == []
        assert merged["format"] == AGG_FORMAT

    def test_merge_rejects_mismatched_inputs(self):
        with pytest.raises(ValueError):
            merge_agg_snapshots(self.build(0, []), {"format": "other"})
        other_width = TelemetryAggregator(window_ms=50.0).snapshot()
        with pytest.raises(ValueError):
            merge_agg_snapshots(self.build(0, []), other_width)

    def test_merge_round_trips_through_json(self):
        # repro top reads files: merging parsed JSON must equal merging
        # the in-memory snapshots.
        a = self.build(0, [("t", 5.0, 3.0)])
        b = self.build(1, [("t", 6.0, 4.0)])
        via_json = merge_agg_snapshots(
            json.loads(json.dumps(a)), json.loads(json.dumps(b))
        )
        assert via_json["windows"] == merge_agg_snapshots(a, b)["windows"]


class TestTenantTelemetry:
    def lifecycle(self, telemetry, vt, submit_ms, commit_ms, obj="doc", notify_ms=None):
        origin = vt.site
        telemetry(make_event(1, submit_ms, origin, "txn_submitted", vt))
        if obj is not None:
            telemetry(make_event(2, submit_ms + 1, origin, "guess_made", vt, obj=obj))
        telemetry(make_event(3, commit_ms, origin, "committed", vt))
        if notify_ms is not None:
            telemetry(
                make_event(4, notify_ms, origin + 1, "view_notified", vt,
                           mode="pessimistic", obj=obj)
            )

    def test_commit_latency_attributed_to_object_tenant(self):
        telemetry = TenantTelemetry(TelemetryAggregator(window_ms=1000.0))
        self.lifecycle(telemetry, VirtualTime(1, 0), 100.0, 140.0, obj="doc")
        cell = telemetry.agg.snapshot()["windows"][0]["tenants"]["obj:doc"]
        assert cell["counters"]["commits"] == 1
        assert cell["sketches"]["commit_latency_ms"]["total"] == 1
        assert cell["quantiles"]["commit_latency_ms"]["p50"] == pytest.approx(40.0, rel=0.02)

    def test_falls_back_to_origin_site_tenant(self):
        telemetry = TenantTelemetry(TelemetryAggregator())
        self.lifecycle(telemetry, VirtualTime(2, 3), 10.0, 20.0, obj=None)
        assert telemetry.agg.tenants() == ["site:3"]

    def test_aborts_counted_at_origin_only(self):
        telemetry = TenantTelemetry(TelemetryAggregator())
        vt = VirtualTime(5, 1)
        telemetry(make_event(1, 10.0, 1, "txn_submitted", vt))
        telemetry(make_event(2, 30.0, 1, "aborted", vt))
        telemetry(make_event(3, 31.0, 2, "aborted", vt))  # remote echo: ignored
        cell = telemetry.agg.snapshot()["windows"][0]["tenants"]["site:1"]
        assert cell["counters"]["aborts"] == 1
        assert "commits" not in cell["counters"]

    def test_notify_lag_measured_from_origin_commit(self):
        telemetry = TenantTelemetry(TelemetryAggregator())
        self.lifecycle(
            telemetry, VirtualTime(7, 0), 100.0, 150.0, obj="doc", notify_ms=230.0
        )
        cell = telemetry.agg.snapshot()["windows"][0]["tenants"]["obj:doc"]
        lag = cell["quantiles"]["notify_lag_ms"]["p50"]
        assert lag == pytest.approx(80.0, rel=0.02)

    def test_optimistic_notifications_not_counted_as_lag(self):
        telemetry = TenantTelemetry(TelemetryAggregator())
        vt = VirtualTime(8, 0)
        self.lifecycle(telemetry, vt, 0.0, 10.0)
        telemetry(make_event(9, 20.0, 1, "view_notified", vt, mode="optimistic"))
        cell = telemetry.agg.snapshot()["windows"][0]["tenants"]["obj:doc"]
        assert "notify_lag_ms" not in cell["sketches"]

    def test_custom_tenant_mapping(self):
        telemetry = TenantTelemetry(
            TelemetryAggregator(), tenant_of=lambda e: f"team-{e.txn_vt.site % 2}"
        )
        self.lifecycle(telemetry, VirtualTime(1, 0), 0.0, 5.0)
        self.lifecycle(telemetry, VirtualTime(1, 1), 0.0, 5.0)
        self.lifecycle(telemetry, VirtualTime(1, 2), 0.0, 5.0)
        assert telemetry.agg.tenants() == ["team-0", "team-1"]

    def test_control_plane_events_ignored(self):
        telemetry = TenantTelemetry(TelemetryAggregator())
        telemetry(make_event(1, 0.0, 0, "committed", None))
        telemetry(make_event(2, 0.0, 0, "site_joined", VirtualTime(1, 0)))
        assert telemetry.agg.tenants() == []

    def test_txn_table_is_bounded(self):
        telemetry = TenantTelemetry(TelemetryAggregator(), max_txns=16)
        for i in range(100):
            telemetry(make_event(i, float(i), 0, "txn_submitted", VirtualTime(i, 0)))
        assert len(telemetry._txns) <= 16
