"""Tests for cross-process trace merging (repro.obs.merge + CLI).

The merge contract under test, straight from the tentpole acceptance
criteria: every send pairs with its delivery (zero unmatched edges on a
clean run), skew-aligned timestamps are monotone along every message
edge, and merging the same inputs twice is byte-identical.
"""

import asyncio
import json
import socket
from typing import Any, Dict, List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import CommitMsg
from repro.obs import load_timeline, merge_timelines
from repro.obs.causal import CausalGraph, events_from_timeline
from repro.obs.events import event_to_dict
from repro.transport.tcp import TcpTransport
from repro.vtime import VirtualTime


def ev(seq: int, t: float, site: int, kind: str, **data: Any) -> Dict[str, Any]:
    return {"seq": seq, "time_ms": t, "site": site, "kind": kind, "txn_vt": None, "data": data}


def two_proc_timelines(skew_ms: float = 1000.0):
    """Proc 1's clock runs ``skew_ms`` ahead; symmetric 2ms network delays.

    True times: p0 sends m1 at 10, p1 delivers at 12; p1 sends m2 at 20,
    p0 delivers at 22.  With symmetric delays the NTP-style estimator
    recovers the skew exactly.
    """
    p0 = [
        ev(0, 10.0, 0, "message_sent", dst=1, msg_id="0:1", msg_type="CommitMsg"),
        ev(1, 22.0, 0, "message_delivered", src=1, msg_id="1:1", msg_type="CommitMsg"),
    ]
    p1 = [
        ev(0, 12.0 + skew_ms, 1, "message_delivered", src=0, msg_id="0:1", msg_type="CommitMsg"),
        ev(1, 20.0 + skew_ms, 1, "message_sent", dst=0, msg_id="1:1", msg_type="CommitMsg"),
    ]
    return [p0, p1]


def edge_times(merged) -> Dict[str, Dict[str, float]]:
    """msg_id -> {"sent": t, "delivered": t} over the merged timeline."""
    out: Dict[str, Dict[str, float]] = {}
    for event in merged.events:
        if event["kind"] == "message_sent":
            out.setdefault(event["data"]["msg_id"], {})["sent"] = event["time_ms"]
        elif event["kind"] == "message_delivered":
            out.setdefault(event["data"]["msg_id"], {})["delivered"] = event["time_ms"]
    return out


class TestSyntheticMerge:
    def test_recovers_symmetric_clock_skew_exactly(self):
        merged = merge_timelines(two_proc_timelines(skew_ms=1000.0))
        assert merged.offsets_ms[0] == 0.0
        assert abs(merged.offsets_ms[1]) == pytest.approx(1000.0)
        # Adjusted times equal the true times.
        times = edge_times(merged)
        assert times["0:1"] == {"sent": 10.0, "delivered": 12.0}
        assert times["1:1"] == {"sent": 20.0, "delivered": 22.0}

    def test_zero_unmatched_and_full_pairing(self):
        merged = merge_timelines(two_proc_timelines())
        assert merged.pairs == 2
        assert merged.unmatched_sends == []
        assert merged.unmatched_deliveries == []
        assert merged.disconnected == []

    def test_message_edges_monotone_after_alignment(self):
        for skew in (0.0, -737.25, 12345.5):
            merged = merge_timelines(two_proc_timelines(skew_ms=skew))
            for msg_id, times in edge_times(merged).items():
                assert times["delivered"] >= times["sent"], (skew, msg_id)

    def test_merge_is_byte_identical_across_reruns(self):
        first = merge_timelines(two_proc_timelines()).to_jsonl()
        second = merge_timelines(two_proc_timelines()).to_jsonl()
        assert first == second

    def test_unmatched_send_is_reported(self):
        timelines = two_proc_timelines()
        timelines[0].append(
            ev(2, 30.0, 0, "message_sent", dst=1, msg_id="0:99", msg_type="CommitMsg")
        )
        merged = merge_timelines(timelines)
        assert merged.unmatched_sends == ["0:99"]
        assert merged.pairs == 2

    def test_unmatched_delivery_is_reported(self):
        timelines = two_proc_timelines()
        timelines[1].append(
            ev(2, 1030.0, 1, "message_delivered", src=0, msg_id="0:77", msg_type="CommitMsg")
        )
        merged = merge_timelines(timelines)
        assert merged.unmatched_deliveries == ["0:77"]

    def test_merged_timeline_feeds_causal_graph(self):
        merged = merge_timelines(two_proc_timelines())
        graph = CausalGraph(events_from_timeline(merged.events))
        # Both message edges survive the round trip into the HB DAG.
        assert sum(1 for e in graph.edges if e.kind == "message") == 2

    def test_program_order_preserved_per_process(self):
        merged = merge_timelines(two_proc_timelines(skew_ms=500.0))
        for proc in (0, 1):
            seqs = [e["data"]["orig_seq"] for e in merged.events if e["data"]["proc"] == proc]
            assert seqs == sorted(seqs)


delay_lists = st.lists(
    st.floats(min_value=0.1, max_value=50.0, allow_nan=False), min_size=1, max_size=8
)


class TestAsymmetricDelayBias:
    """Pin the documented skew-estimator bias bound.

    The NTP-style estimate assumes the *fastest* message in each
    direction saw the same delay.  When the fastest forward delay is
    ``f`` and the fastest reverse delay is ``r``, the estimate is off by
    exactly ``(f - r) / 2`` — i.e. the error is bounded by half the
    delay asymmetry, never by the skew magnitude, and symmetric minimum
    delays recover the skew exactly no matter how asymmetric the rest of
    the traffic is.
    """

    def timelines(self, skew_ms, fwd_delays, rev_delays):
        """p1's clock ahead by ``skew_ms``; explicit per-message delays."""
        p0, p1 = [], []
        seq0 = seq1 = 0
        for i, d in enumerate(fwd_delays):
            t = 10.0 + 100.0 * i
            p0.append(ev(seq0, t, 0, "message_sent", dst=1, msg_id=f"0:{i+1}", msg_type="CommitMsg"))
            seq0 += 1
            p1.append(ev(seq1, t + d + skew_ms, 1, "message_delivered", src=0, msg_id=f"0:{i+1}", msg_type="CommitMsg"))
            seq1 += 1
        for j, d in enumerate(rev_delays):
            t = 15.0 + 100.0 * j
            p1.append(ev(seq1, t + skew_ms, 1, "message_sent", dst=0, msg_id=f"1:{j+1}", msg_type="CommitMsg"))
            seq1 += 1
            p0.append(ev(seq0, t + d, 0, "message_delivered", src=1, msg_id=f"1:{j+1}", msg_type="CommitMsg"))
            seq0 += 1
        return [p0, p1]

    @settings(max_examples=100)
    @given(
        st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
        delay_lists,
        delay_lists,
    )
    def test_offset_error_is_half_the_minimum_delay_asymmetry(
        self, skew_ms, fwd_delays, rev_delays
    ):
        merged = merge_timelines(self.timelines(skew_ms, fwd_delays, rev_delays))
        bias = merged.offsets_ms[1] - skew_ms
        expected_bias = (min(fwd_delays) - min(rev_delays)) / 2.0
        assert bias == pytest.approx(expected_bias, abs=1e-5)
        # The documented bound: error <= asymmetry/2 <= half the fastest RTT.
        assert abs(bias) <= abs(min(fwd_delays) - min(rev_delays)) / 2.0 + 1e-5
        assert abs(bias) <= (min(fwd_delays) + min(rev_delays)) / 2.0 + 1e-5

    @settings(max_examples=50)
    @given(
        st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
        st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
        delay_lists,
        delay_lists,
    )
    def test_symmetric_minimum_delays_recover_skew_exactly(
        self, skew_ms, min_delay, fwd_extra, rev_extra
    ):
        # Slower messages in either direction never perturb the estimate:
        # only the per-direction minimum matters.
        fwd = [min_delay] + [min_delay + d for d in fwd_extra]
        rev = [min_delay] + [min_delay + d for d in rev_extra]
        merged = merge_timelines(self.timelines(skew_ms, fwd, rev))
        assert merged.offsets_ms[1] == pytest.approx(skew_ms, abs=1e-5)

    def test_one_directional_traffic_absorbs_delay_into_offset(self):
        # With no reverse edges the fastest forward message is assumed
        # zero-delay: the offset absorbs its true delay (documented
        # degradation, still keeps every edge monotone).
        merged = merge_timelines(self.timelines(100.0, [4.0, 9.0], []))
        assert merged.offsets_ms[1] == pytest.approx(104.0)
        for times in edge_times(merged).values():
            assert times["delivered"] >= times["sent"]


class TestSampledOutMerge:
    def sampled_marker(self, seq, t, msg_id):
        return ev(
            seq, t, 0, "message_sent",
            dst=1, msg_id=msg_id, msg_type="CommitMsg", sampled=False,
        )

    def test_sampled_markers_not_counted_unmatched(self):
        timelines = two_proc_timelines()
        timelines[0].append(self.sampled_marker(2, 30.0, "0:50"))
        merged = merge_timelines(timelines)
        assert merged.unmatched_sends == []
        assert merged.sampled_out == ["0:50"]
        assert merged.pairs == 2

    def test_sampled_marker_with_delivery_is_an_ordinary_edge(self):
        # If a delivery *does* exist (e.g. mixed record_dropped configs),
        # the pair is matched and not tallied as sampled out.
        timelines = two_proc_timelines()
        timelines[0].append(self.sampled_marker(2, 30.0, "0:50"))
        timelines[1].append(
            ev(2, 1033.0, 1, "message_delivered", src=0, msg_id="0:50", msg_type="CommitMsg")
        )
        merged = merge_timelines(timelines)
        assert merged.sampled_out == []
        assert merged.pairs == 3

    def test_real_send_loss_still_reported_alongside_markers(self):
        timelines = two_proc_timelines()
        timelines[0].append(self.sampled_marker(2, 30.0, "0:50"))
        timelines[0].append(
            ev(3, 31.0, 0, "message_sent", dst=1, msg_id="0:51", msg_type="CommitMsg")
        )
        merged = merge_timelines(timelines)
        assert merged.unmatched_sends == ["0:51"]
        assert merged.sampled_out == ["0:50"]

    def test_cli_exits_zero_with_sampled_out_markers(self, tmp_path, capsys):
        from repro.cli import main

        paths = []
        timelines = two_proc_timelines()
        timelines[0].append(self.sampled_marker(2, 30.0, "0:50"))
        for proc, timeline in enumerate(timelines):
            path = tmp_path / f"trace{proc}.jsonl"
            path.write_text("\n".join(json.dumps(e) for e in timeline) + "\n")
            paths.append(str(path))
        out = tmp_path / "merged.jsonl"
        rc = main(["trace", "--merge", *paths, "--format", "jsonl", "--out", str(out), "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["sampled_out"] == ["0:50"]
        assert doc["unmatched_sends"] == []


class TestLoadTimeline:
    def test_skips_non_event_lines(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        lines = [
            json.dumps({"flight": "repro-flight/1", "reason": "crash", "events": 1}),
            "",
            json.dumps(ev(1, 5.0, 0, "committed")),
            json.dumps(ev(0, 1.0, 0, "txn_submitted")),
        ]
        path.write_text("\n".join(lines) + "\n")
        events = load_timeline(str(path))
        # Header and blank dropped; events back in seq order.
        assert [e["seq"] for e in events] == [0, 1]


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestRealTransportMerge:
    def run_traced_pair(self, appends: int = 10):
        """Ping-pong over real sockets with both buses recording."""
        addrs = {0: ("127.0.0.1", free_port()), 1: ("127.0.0.1", free_port())}

        async def scenario():
            a = TcpTransport(addrs, local_sites={0})
            b = TcpTransport(addrs, local_sites={1})
            a.bus.enable()
            b.bus.enable()
            done = asyncio.Event()
            seen: List[Any] = []

            def on_a(src, payload):
                seen.append(payload)
                if len(seen) >= appends:
                    done.set()

            a.register(0, on_a)
            b.register(1, lambda src, payload: b.send(1, 0, payload))
            await a.start()
            await b.start()
            for i in range(appends):
                a.send(0, 1, CommitMsg(VirtualTime(i + 1, 0), i))
            await asyncio.wait_for(done.wait(), timeout=10.0)
            await a.aquiesce()
            await b.aquiesce()
            timelines = [
                [event_to_dict(e) for e in a.bus.events],
                [event_to_dict(e) for e in b.bus.events],
            ]
            await a.stop()
            await b.stop()
            return timelines

        return asyncio.run(scenario())

    def test_end_to_end_merge_has_no_unmatched_edges(self):
        timelines = self.run_traced_pair()
        merged = merge_timelines(timelines)
        assert merged.unmatched_sends == []
        assert merged.unmatched_deliveries == []
        assert merged.pairs == 20  # 10 pings + 10 echoes
        for msg_id, times in edge_times(merged).items():
            assert times["delivered"] >= times["sent"], msg_id

    def test_end_to_end_merge_deterministic_given_inputs(self):
        timelines = self.run_traced_pair(appends=5)
        assert merge_timelines(timelines).to_jsonl() == merge_timelines(timelines).to_jsonl()

    def test_trace_ids_carry_txn_vt(self):
        timelines = self.run_traced_pair(appends=3)
        sent = [e for e in timelines[0] if e["kind"] == "message_sent"]
        assert sent and all(e["txn_vt"] for e in sent)


class TestMergeCli:
    def write_timelines(self, tmp_path):
        paths = []
        for proc, timeline in enumerate(two_proc_timelines()):
            path = tmp_path / f"trace{proc}.jsonl"
            path.write_text("\n".join(json.dumps(e) for e in timeline) + "\n")
            paths.append(str(path))
        return paths

    def test_merge_writes_jsonl_and_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        paths = self.write_timelines(tmp_path)
        out = tmp_path / "merged.jsonl"
        rc = main(["trace", "--merge", *paths, "--format", "jsonl", "--out", str(out), "--quiet"])
        assert rc == 0
        lines = [json.loads(l) for l in out.read_text().splitlines()]
        assert len(lines) == 4
        assert {l["kind"] for l in lines} == {"message_sent", "message_delivered"}

    def test_merge_exits_nonzero_on_unmatched(self, tmp_path, capsys):
        from repro.cli import main

        paths = self.write_timelines(tmp_path)
        extra = ev(2, 30.0, 0, "message_sent", dst=1, msg_id="0:99", msg_type="CommitMsg")
        with open(paths[0], "a") as fh:
            fh.write(json.dumps(extra) + "\n")
        out = tmp_path / "merged.jsonl"
        args = ["trace", "--merge", *paths, "--format", "jsonl", "--out", str(out), "--quiet"]
        assert main(args) == 1
        assert main(args + ["--allow-unmatched"]) == 0
