"""Wire codec tests: golden bytes, full round-trip properties, rejection.

The golden-bytes cases pin the exact encoding of representative payloads:
any change to the byte layout (tag values, varint scheme, field order,
canonical collection ordering) fails here and forces a deliberate
``WIRE_VERSION`` bump.  The Hypothesis properties check, for every
registered message type, that ``decode(encode(x)) == x`` and that
re-encoding is byte-identical (the determinism the cross-process digest
comparison relies on).
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.association import Invitation
from repro.core.messages import (
    AbortMsg,
    CommitMsg,
    ConfirmMsg,
    DelegateGrant,
    Envelope,
    FailQueryMsg,
    FailQueryReplyMsg,
    FailResolutionMsg,
    GraphRepairAckMsg,
    GraphRepairApplyMsg,
    GraphRepairProposeMsg,
    JoinReplyMsg,
    JoinRequestMsg,
    OpPayload,
    PathStep,
    ReadCheck,
    SlotId,
    SnapshotCheck,
    SnapshotConfirmMsg,
    SnapshotReplyMsg,
    TxnPropagateMsg,
    WriteConfirmedMsg,
    WriteOp,
)
from repro.core.repgraph import GraphNode, ReplicationGraph
from repro.errors import WireError
from repro.vtime import VT_ZERO, VirtualTime
from repro.wire import (
    FRAME_VERSION_TENANT,
    MESSAGE_TYPES,
    WIRE_STRUCTS,
    WIRE_VERSION,
    TraceContext,
    decode,
    decode_frame,
    decode_frame_body,
    decode_frame_parts,
    encode,
    encode_frame,
    register_struct,
)

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

vts = st.builds(
    VirtualTime,
    st.integers(min_value=0, max_value=2**40),
    st.integers(min_value=-1, max_value=64),
)
uids = st.from_regex(r"s[0-9]{1,2}:[a-z]{1,8}", fullmatch=True)
small_ints = st.integers(min_value=-(2**34), max_value=2**34)
clocks = st.integers(min_value=0, max_value=2**32)
ids = st.tuples(st.integers(min_value=0, max_value=64), st.integers(min_value=0, max_value=2**20))
texts = st.text(max_size=12)

slot_ids = st.builds(SlotId, vts, st.integers(min_value=0, max_value=1000))
path_steps = st.builds(PathStep, st.one_of(st.none(), texts), st.one_of(vts, slot_ids))
paths = st.tuples(*[path_steps] * 0) | st.builds(tuple, st.lists(path_steps, max_size=3))

#: Scalars + the structured values that appear inside op args / sync specs.
wire_scalars = st.one_of(
    st.none(),
    st.booleans(),
    small_ints,
    st.floats(allow_nan=False),
    texts,
    st.binary(max_size=8),
    vts,
    slot_ids,
)
wire_values = st.recursive(
    wire_scalars,
    lambda children: st.one_of(
        st.builds(tuple, st.lists(children, max_size=3)),
        st.lists(children, max_size=3),
        st.dictionaries(st.one_of(texts, small_ints, vts), children, max_size=3),
        st.frozensets(st.one_of(texts, small_ints, vts), max_size=3),
    ),
    max_leaves=8,
)

op_payloads = st.builds(
    OpPayload,
    st.sampled_from(["set", "insert", "remove", "put", "delete", "graph", "assoc", "sync", "structural"]),
    st.builds(tuple, st.lists(wire_values, max_size=3)),
)
write_ops = st.builds(WriteOp, uids, op_payloads, vts, vts, paths)
read_checks = st.builds(ReadCheck, uids, vts, vts, paths)
delegate_grants = st.builds(DelegateGrant, st.builds(tuple, st.lists(st.integers(0, 32), max_size=5)))
graph_nodes = st.builds(GraphNode, st.integers(min_value=0, max_value=64), uids)
graphs = st.builds(
    ReplicationGraph,
    st.frozensets(graph_nodes, min_size=1, max_size=4),
    st.frozensets(st.frozensets(uids, min_size=2, max_size=2), max_size=3),
)
snapshot_checks = st.builds(SnapshotCheck, uids, vts, vts, st.booleans(), paths)
vt_tuples = st.builds(tuple, st.lists(vts, max_size=4))
int_tuples = st.builds(tuple, st.lists(st.integers(0, 32), max_size=4))
uid_tuples = st.builds(tuple, st.lists(uids, max_size=4))

#: One strategy per wire-registered message type, covering every field.
MESSAGE_STRATEGIES = {
    TxnPropagateMsg: st.builds(
        TxnPropagateMsg,
        vts,
        st.integers(0, 64),
        st.builds(tuple, st.lists(write_ops, max_size=3)),
        st.builds(tuple, st.lists(read_checks, max_size=3)),
        clocks,
        st.one_of(st.none(), delegate_grants),
        st.booleans(),
    ),
    ConfirmMsg: st.builds(ConfirmMsg, vts, st.integers(0, 64), st.booleans(), clocks, texts),
    CommitMsg: st.builds(CommitMsg, vts, clocks),
    AbortMsg: st.builds(AbortMsg, vts, clocks, texts),
    SnapshotConfirmMsg: st.builds(
        SnapshotConfirmMsg, ids, st.integers(0, 64),
        st.builds(tuple, st.lists(snapshot_checks, max_size=3)), clocks,
    ),
    SnapshotReplyMsg: st.builds(SnapshotReplyMsg, ids, st.booleans(), uid_tuples, clocks),
    WriteConfirmedMsg: st.builds(WriteConfirmedMsg, uids, vts, vts, vts, clocks),
    JoinRequestMsg: st.builds(
        JoinRequestMsg, ids, st.integers(0, 64), vts, uids, uids, graphs, clocks,
    ),
    JoinReplyMsg: st.builds(
        JoinReplyMsg, ids, st.booleans(), wire_values, st.one_of(st.none(), graphs),
        vts, vts, vt_tuples, st.integers(0, 64), clocks, texts, st.booleans(),
    ),
    FailQueryMsg: st.builds(
        FailQueryMsg, ids, st.integers(0, 64), st.integers(0, 64), vt_tuples, clocks
    ),
    FailQueryReplyMsg: st.builds(
        FailQueryReplyMsg, ids, st.integers(0, 64), vt_tuples, vt_tuples, clocks
    ),
    FailResolutionMsg: st.builds(FailResolutionMsg, ids, vt_tuples, vt_tuples, clocks),
    GraphRepairProposeMsg: st.builds(
        GraphRepairProposeMsg, ids, st.integers(0, 64), st.integers(0, 64),
        uid_tuples, vts, clocks, int_tuples,
    ),
    GraphRepairAckMsg: st.builds(
        GraphRepairAckMsg, ids, st.integers(0, 64), st.booleans(), clocks
    ),
    GraphRepairApplyMsg: st.builds(
        GraphRepairApplyMsg, ids, st.integers(0, 64), uid_tuples, vts, clocks, int_tuples
    ),
}
MESSAGE_STRATEGIES[Envelope] = st.builds(
    Envelope,
    st.builds(
        tuple,
        st.lists(
            st.one_of(*[MESSAGE_STRATEGIES[t] for t in (CommitMsg, ConfirmMsg, AbortMsg)]),
            min_size=1,
            max_size=4,
        ),
    ),
)


def test_every_message_type_has_a_strategy():
    assert set(MESSAGE_STRATEGIES) == set(MESSAGE_TYPES)


# ---------------------------------------------------------------------------
# Round-trip properties
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("msg_type", MESSAGE_TYPES, ids=lambda t: t.__name__)
def test_roundtrip_every_message_type(msg_type):
    @settings(max_examples=40)
    @given(MESSAGE_STRATEGIES[msg_type])
    def check(msg):
        data = encode(msg)
        back = decode(data)
        assert back == msg
        assert encode(back) == data

    check()


@settings(max_examples=60)
@given(wire_values)
def test_roundtrip_arbitrary_wire_values(value):
    data = encode(value)
    back = decode(data)
    assert back == value
    assert encode(back) == data


@settings(max_examples=30)
@given(graphs)
def test_roundtrip_replication_graphs(graph):
    data = encode(graph)
    assert decode(data) == graph
    assert encode(decode(data)) == data


def test_dict_and_frozenset_encoding_is_order_independent():
    assert encode({"b": 1, "a": 2}) == encode({"a": 2, "b": 1})
    assert encode(frozenset({"x", "y", "z"})) == encode(frozenset({"z", "x", "y"}))


def test_invitation_roundtrip():
    inv = Invitation(inviter_site=3, assoc_uid="s3:doc.assoc", note="join me")
    assert decode(encode(inv)) == inv


def test_negative_and_large_ints():
    for n in (0, -1, 1, -(2**40), 2**40, 2**70, -(2**70)):
        assert decode(encode(n)) == n


def test_bool_is_not_confused_with_int():
    assert decode(encode(True)) is True
    assert decode(encode(False)) is False
    assert decode(encode(1)) == 1 and decode(encode(1)) is not True


# ---------------------------------------------------------------------------
# Golden bytes
# ---------------------------------------------------------------------------

GOLDEN = [
    (VirtualTime(7, 2), "010b0e04"),
    (CommitMsg(VirtualTime(5, 1), 12), "01280b0a020318"),
    (ConfirmMsg(VirtualTime(3, 0), 2, True, 9, ""), "01270b060003040103120500"),
    (
        TxnPropagateMsg(
            txn_vt=VirtualTime(9, 1),
            origin=1,
            writes=(
                WriteOp(
                    "s0:x",
                    OpPayload("set", (5,)),
                    VT_ZERO,
                    VirtualTime(9, 1),
                    (),
                ),
            ),
            read_checks=(ReadCheck("s1:y", VirtualTime(4, 0), VirtualTime(2, 0)),),
            clock=11,
            delegate=DelegateGrant((0, 1, 2)),
            force_confirm=False,
        ),
        "01260b12020302070123050473303a782205037365740701030a0b00010b12"
        "020700070124050473313a790b08000b04000700031625070303000302030402",
    ),
    (
        Envelope((CommitMsg(VirtualTime(5, 1), 12), AbortMsg(VirtualTime(6, 1), 13, "x"))),
        "01390702280b0a020318290b0c02031a050178",
    ),
    # Trace headers: the sampled flag (head-based sampling decision) is
    # the last field, so pre-sampling captures differ only in the one
    # trailing bool byte.
    (TraceContext(3, "5@1", 42), "013a03060503354031035401"),
    (TraceContext(3, "5@1", 42, False), "013a03060503354031035402"),
]


@pytest.mark.parametrize("value,hex_bytes", GOLDEN, ids=[type(v).__name__ for v, _ in GOLDEN])
def test_golden_bytes(value, hex_bytes):
    assert encode(value).hex() == hex_bytes
    assert decode(bytes.fromhex(hex_bytes)) == value


def test_version_byte_leads_every_payload():
    assert encode(None)[0] == WIRE_VERSION


# ---------------------------------------------------------------------------
# Rejection
# ---------------------------------------------------------------------------


def test_rejects_empty_payload():
    with pytest.raises(WireError):
        decode(b"")


def test_rejects_unknown_version():
    good = encode(42)
    with pytest.raises(WireError, match="version"):
        decode(bytes([WIRE_VERSION + 1]) + good[1:])


def test_rejects_unknown_tag():
    with pytest.raises(WireError, match="unknown wire tag"):
        decode(bytes([WIRE_VERSION, 0xFF]))


def test_rejects_trailing_garbage():
    with pytest.raises(WireError, match="trailing"):
        decode(encode(1) + b"\x00")


def test_rejects_truncated_struct():
    data = encode(CommitMsg(VirtualTime(5, 1), 12))
    with pytest.raises(WireError):
        decode(data[:-1])


def test_rejects_unencodable_value():
    with pytest.raises(WireError, match="not wire-encodable"):
        encode(object())


def test_rejects_invalid_struct_payload():
    # An encoded ReplicationGraph with zero nodes violates the class
    # invariant; the decoder must surface it as a WireError.
    import repro.wire.codec as codec

    tag = codec._STRUCTS_BY_CLASS[ReplicationGraph][0]
    bad = bytes([WIRE_VERSION, tag, codec._T_FROZENSET, 0, codec._T_FROZENSET, 0])
    with pytest.raises(WireError, match="ReplicationGraph"):
        decode(bad)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


def test_register_struct_rejects_conflicts():
    @dataclasses.dataclass(frozen=True)
    class Other:
        x: int

    with pytest.raises(WireError, match="already registered"):
        register_struct(0x20, Other)  # 0x20 belongs to SlotId
    with pytest.raises(WireError, match="tags must be"):
        register_struct(0x05, Other)  # primitive range
    register_struct(0x20, SlotId)  # re-registering the same pair is a no-op


def test_register_struct_extension_roundtrips():
    @dataclasses.dataclass(frozen=True)
    class CustomPing:
        nonce: int
        tag: str

    register_struct(0xFE, CustomPing)
    msg = CustomPing(nonce=99, tag="hi")
    assert decode(encode(msg)) == msg


def test_all_structs_are_dataclasses_in_field_order():
    for cls in WIRE_STRUCTS:
        assert dataclasses.is_dataclass(cls)


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


def test_frame_roundtrip():
    msg = CommitMsg(VirtualTime(5, 1), 12)
    frame = encode_frame(3, 7, msg)
    length = int.from_bytes(frame[:4], "big")
    assert length == len(frame) - 4
    assert decode_frame_body(frame[4:]) == (3, 7, msg)


def test_frame_rejects_non_triple_body():
    with pytest.raises(WireError, match="triple"):
        decode_frame_body(encode("just a string"))


# Golden frames: the v1 bytes predate trace propagation and must never
# change (old processes' frames stay decodable); the v2 bytes pin the
# traced layout (version byte 0x02 + (src, dst, payload, trace) 4-tuple)
# including the trailing sampled flag (True=0x01 here; the head-dropped
# variant pins the False byte).
GOLDEN_FRAME_V1 = "0000000d0107030306030e280b0a020318"
GOLDEN_FRAME_V2 = "000000180207040306030e280b0a0203183a03060503354031035401"
GOLDEN_FRAME_V2_DROPPED = (
    "000000180207040306030e280b0a0203183a03060503354031035402"
)


def test_golden_frame_bytes_both_versions():
    msg = CommitMsg(VirtualTime(5, 1), 12)
    trace = TraceContext(3, "5@1", 42)
    assert encode_frame(3, 7, msg).hex() == GOLDEN_FRAME_V1
    assert encode_frame(3, 7, msg, trace).hex() == GOLDEN_FRAME_V2
    dropped = TraceContext(3, "5@1", 42, sampled=False)
    assert encode_frame(3, 7, msg, dropped).hex() == GOLDEN_FRAME_V2_DROPPED


def test_sampled_out_trace_rides_the_frame():
    # The origin's head-drop decision must survive the wire so every
    # receiving process skips the same trace (repro.obs.sample).
    msg = CommitMsg(VirtualTime(5, 1), 12)
    frame = bytes.fromhex(GOLDEN_FRAME_V2_DROPPED)
    _, _, _, trace = decode_frame_parts(frame[4:])
    assert trace == TraceContext(3, "5@1", 42, sampled=False)
    assert trace.sampled is False


def test_untraced_frame_is_byte_identical_to_pre_trace_format():
    # encode_frame without a trace must produce exactly encode((src, dst,
    # payload)) behind the length prefix — the v1 compatibility contract.
    msg = CommitMsg(VirtualTime(5, 1), 12)
    frame = encode_frame(3, 7, msg)
    assert frame[4:] == encode((3, 7, msg))


def test_decode_frame_parts_both_versions():
    msg = CommitMsg(VirtualTime(5, 1), 12)
    trace = TraceContext(3, "5@1", 42)
    v1 = bytes.fromhex(GOLDEN_FRAME_V1)
    v2 = bytes.fromhex(GOLDEN_FRAME_V2)
    assert decode_frame_parts(v1[4:]) == (3, 7, msg, None)
    assert decode_frame_parts(v2[4:]) == (3, 7, msg, trace)
    # decode_frame_body drops (but still validates) the trace.
    assert decode_frame_body(v2[4:]) == (3, 7, msg)


def test_traced_frame_roundtrip_and_msg_id():
    msg = CommitMsg(VirtualTime(5, 1), 12)
    trace = TraceContext(origin=3, trace_id="5@1", parent_span=42)
    frame = encode_frame(3, 7, msg, trace)
    length = int.from_bytes(frame[:4], "big")
    assert length == len(frame) - 4
    src, dst, payload, got = decode_frame_parts(frame[4:])
    assert (src, dst, payload) == (3, 7, msg)
    assert got == trace
    assert got.msg_id == "3:42"


def test_traced_frame_rejects_malformed_4_tuple():
    # A v2 body whose 4th element is not a TraceContext is corruption.
    body = bytes([2]) + encode((3, 7, CommitMsg(VirtualTime(5, 1), 12), "oops"))[1:]
    with pytest.raises(WireError, match="TraceContext"):
        decode_frame_parts(body)


def test_traced_frame_rejects_trailing_bytes():
    v2 = bytes.fromhex(GOLDEN_FRAME_V2)
    with pytest.raises(WireError, match="trailing"):
        decode_frame_parts(v2[4:] + b"\x00")


# Tenant-scoped (v3) frames: version byte 0x03 + (tenant, src, dst,
# payload, trace-or-None) 5-tuple.  Tenant 0 must keep emitting the
# v1/v2 bytes unchanged — the SessionHost interop contract.


def test_tenant_zero_is_byte_identical_to_v1_and_v2():
    msg = CommitMsg(VirtualTime(5, 1), 12)
    trace = TraceContext(3, "5@1", 42)
    assert encode_frame(3, 7, msg, tenant=0) == encode_frame(3, 7, msg)
    assert encode_frame(3, 7, msg, trace, tenant=0) == encode_frame(3, 7, msg, trace)
    assert encode_frame(3, 7, msg, tenant=0).hex() == GOLDEN_FRAME_V1


def test_tenant_frame_roundtrip_with_and_without_trace():
    msg = CommitMsg(VirtualTime(5, 1), 12)
    trace = TraceContext(3, "5@1", 42)
    plain = encode_frame(3, 7, msg, tenant=9)
    assert plain[4] == FRAME_VERSION_TENANT
    assert int.from_bytes(plain[:4], "big") == len(plain) - 4
    assert decode_frame(plain[4:]) == (9, 3, 7, msg, None)
    traced = encode_frame(3, 7, msg, trace, tenant=9)
    assert decode_frame(traced[4:]) == (9, 3, 7, msg, trace)


def test_decode_frame_accepts_all_versions():
    msg = CommitMsg(VirtualTime(5, 1), 12)
    trace = TraceContext(3, "5@1", 42)
    v1 = bytes.fromhex(GOLDEN_FRAME_V1)
    v2 = bytes.fromhex(GOLDEN_FRAME_V2)
    assert decode_frame(v1[4:]) == (0, 3, 7, msg, None)
    assert decode_frame(v2[4:]) == (0, 3, 7, msg, trace)
    # The tenant-blind decoders validate then drop a v3 tenant id.
    v3 = encode_frame(3, 7, msg, trace, tenant=123)
    assert decode_frame_parts(v3[4:]) == (3, 7, msg, trace)
    assert decode_frame_body(v3[4:]) == (3, 7, msg)


def test_tenant_frame_rejects_reserved_tenant_zero():
    # Canonical tenant-0 frames are v1/v2; a v3 body claiming tenant 0 is
    # corruption, not an alternate spelling.
    msg = CommitMsg(VirtualTime(5, 1), 12)
    body = bytes([FRAME_VERSION_TENANT]) + encode((0, 3, 7, msg, None))[1:]
    with pytest.raises(WireError, match="reserved tenant"):
        decode_frame(body)


def test_tenant_frame_rejects_malformed_5_tuple():
    msg = CommitMsg(VirtualTime(5, 1), 12)
    body = bytes([FRAME_VERSION_TENANT]) + encode((9, 3, 7, msg, "oops"))[1:]
    with pytest.raises(WireError, match="5-tuple"):
        decode_frame(body)
