"""Quantile-sketch accuracy and merge laws (repro.obs.sketch).

Two families of properties pin the sketch:

* **Accuracy**: against the exact quantiles of the sorted sample, every
  estimate must respect the configured relative-error bound, including
  on distributions built to break log-bucketed sketches (many decades of
  range, widely separated modes, heavy tails, a single repeated value).
* **Merge laws**: merging is equivalent to observing the concatenated
  stream (the property that makes cross-site aggregation sound), and is
  commutative/associative on the bucket state.  Order-insensitivity and
  wire/JSON round-trips follow from the same state equality.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.sketch import (
    DEFAULT_RELATIVE_ACCURACY,
    QuantileSketch,
    SketchSnapshot,
    merge_sketches,
)
from repro.wire.codec import decode, encode

QUANTILES = (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999)


def exact_quantile(ordered, q):
    return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1)))]


def assert_within_bound(sketch, values, quantiles=QUANTILES):
    ordered = sorted(values)
    for q in quantiles:
        true = exact_quantile(ordered, q)
        est = sketch.quantile(q)
        if true <= 1e-9:
            assert est <= 1e-9, (q, true, est)
        else:
            rel = abs(est - true) / true
            assert rel <= sketch.relative_accuracy + 1e-12, (q, true, est, rel)


def fill(values, alpha=DEFAULT_RELATIVE_ACCURACY):
    sketch = QuantileSketch(alpha)
    for v in values:
        sketch.observe(v)
    return sketch


def state(sketch):
    """The mergeable state (everything except float `sum` round-off)."""
    return (
        sketch.relative_accuracy,
        sketch.zero_count,
        sketch.total,
        sketch.min,
        sketch.max,
        tuple(sorted(sketch.buckets.items())),
    )


# ---------------------------------------------------------------------------
# Accuracy on adversarial distributions
# ---------------------------------------------------------------------------


class TestAccuracy:
    def test_lognormal(self):
        rng = random.Random(1)
        values = [rng.lognormvariate(3.0, 2.0) for _ in range(20_000)]
        assert_within_bound(fill(values), values)

    def test_loguniform_nine_decades(self):
        rng = random.Random(2)
        values = [10.0 ** rng.uniform(-3.0, 6.0) for _ in range(20_000)]
        assert_within_bound(fill(values), values)

    def test_bimodal_separated_modes(self):
        rng = random.Random(3)
        values = [
            abs(rng.gauss(1.0, 0.05)) if rng.random() < 0.5 else rng.gauss(5000.0, 100.0)
            for _ in range(20_000)
        ]
        assert_within_bound(fill(values), values)

    def test_pareto_heavy_tail(self):
        rng = random.Random(4)
        values = [rng.paretovariate(1.2) for _ in range(20_000)]
        assert_within_bound(fill(values), values)

    def test_constant_stream_is_exact(self):
        values = [42.0] * 10_000
        sketch = fill(values)
        for q in QUANTILES:
            # min/max clamping pins a one-bucket sketch to the exact value
            assert sketch.quantile(q) == 42.0
        assert len(sketch.buckets) == 1

    def test_tight_accuracy_setting(self):
        rng = random.Random(5)
        values = [rng.lognormvariate(0.0, 1.0) for _ in range(5_000)]
        assert_within_bound(fill(values, alpha=0.001), values)

    def test_coarse_accuracy_setting(self):
        rng = random.Random(6)
        values = [rng.expovariate(0.01) for _ in range(5_000)]
        assert_within_bound(fill(values, alpha=0.1), values)

    def test_zero_values_land_in_zero_bucket(self):
        sketch = fill([0.0] * 90 + [100.0] * 10)
        assert sketch.zero_count == 90
        assert sketch.quantile(0.5) == 0.0
        rel = abs(sketch.quantile(0.95) - 100.0) / 100.0
        assert rel <= sketch.relative_accuracy

    def test_empty_sketch(self):
        sketch = QuantileSketch()
        assert sketch.quantile(0.5) == 0.0
        assert sketch.total == 0
        assert sketch.mean == 0.0

    def test_single_observation(self):
        sketch = fill([7.25])
        for q in (0.0, 0.5, 1.0):
            assert sketch.quantile(q) == 7.25

    def test_extreme_quantiles_clamp_to_observed_range(self):
        rng = random.Random(7)
        values = [rng.uniform(0.5, 900.0) for _ in range(2_000)]
        sketch = fill(values)
        lo, hi = min(values), max(values)
        # q=0/q=1 are bucket midpoints clamped into [min, max]: never
        # outside the observed range, and within the relative bound.
        assert lo <= sketch.quantile(0.0) <= lo * (1 + sketch.relative_accuracy)
        assert hi * (1 - sketch.relative_accuracy) <= sketch.quantile(1.0) <= hi
        assert sketch.min == lo
        assert sketch.max == hi

    def test_rejects_negative_and_nan(self):
        sketch = QuantileSketch()
        with pytest.raises(ValueError):
            sketch.observe(-1.0)
        with pytest.raises(ValueError):
            sketch.observe(float("nan"))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            QuantileSketch(relative_accuracy=0.0)
        with pytest.raises(ValueError):
            QuantileSketch(relative_accuracy=1.0)
        with pytest.raises(ValueError):
            QuantileSketch(max_buckets=1)
        with pytest.raises(ValueError):
            QuantileSketch().quantile(1.5)

    def test_bucket_cap_collapses_low_tail_only(self):
        # 9 decades at alpha=0.01 needs ~1000 buckets; cap at 64 and only
        # the top ~0.56 decades keep their own buckets.  Quantiles landing
        # there (p99/p999 of a log-uniform stream — the ones SLOs watch)
        # must keep the full guarantee; lower ones degrade by design.
        rng = random.Random(8)
        values = [10.0 ** rng.uniform(-3.0, 6.0) for _ in range(20_000)]
        sketch = QuantileSketch(max_buckets=64)
        for v in values:
            sketch.observe(v)
        assert len(sketch.buckets) <= 64
        assert_within_bound(sketch, values, quantiles=(0.99, 0.999))


# ---------------------------------------------------------------------------
# Merge laws
# ---------------------------------------------------------------------------

value_lists = st.lists(
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False),
    max_size=60,
)


class TestMergeLaws:
    @settings(max_examples=80)
    @given(value_lists, value_lists)
    def test_merge_equals_concatenated_stream(self, xs, ys):
        merged = fill(xs)
        merged.merge(fill(ys))
        assert state(merged) == state(fill(xs + ys))
        assert merged.sum == pytest.approx(
            math.fsum(xs) + math.fsum(ys), rel=1e-9, abs=1e-6
        )

    @settings(max_examples=60)
    @given(value_lists, value_lists)
    def test_merge_is_commutative(self, xs, ys):
        ab = fill(xs)
        ab.merge(fill(ys))
        ba = fill(ys)
        ba.merge(fill(xs))
        assert state(ab) == state(ba)

    @settings(max_examples=60)
    @given(value_lists, value_lists, value_lists)
    def test_merge_is_associative(self, xs, ys, zs):
        left = fill(xs)
        left.merge(fill(ys))
        left.merge(fill(zs))
        bc = fill(ys)
        bc.merge(fill(zs))
        right = fill(xs)
        right.merge(bc)
        assert state(left) == state(right)

    @settings(max_examples=60)
    @given(st.lists(value_lists, max_size=6))
    def test_order_insensitive_and_merge_sketches_helper(self, shards):
        forward = merge_sketches(fill(s) for s in shards)
        backward = merge_sketches(fill(s) for s in reversed(shards))
        assert state(forward) == state(backward)
        assert state(forward) == state(fill([v for s in shards for v in s]))

    def test_merge_identity(self):
        sketch = fill([1.0, 2.0, 3.0])
        before = state(sketch)
        sketch.merge(QuantileSketch())
        assert state(sketch) == before

    def test_merge_rejects_mismatched_accuracy(self):
        with pytest.raises(ValueError):
            QuantileSketch(0.01).merge(QuantileSketch(0.02))

    def test_merged_quantiles_stay_within_bound(self):
        rng = random.Random(9)
        shards = [
            [rng.lognormvariate(2.0, 1.5) for _ in range(2_000)] for _ in range(8)
        ]
        merged = merge_sketches(fill(s) for s in shards)
        everything = [v for s in shards for v in s]
        assert_within_bound(merged, everything)

    def test_copy_is_independent(self):
        sketch = fill([1.0, 10.0, 100.0])
        dup = sketch.copy()
        dup.observe(1000.0)
        assert sketch.total == 3
        assert dup.total == 4


# ---------------------------------------------------------------------------
# Snapshots: wire + JSON round-trips
# ---------------------------------------------------------------------------


class TestSnapshots:
    @settings(max_examples=60)
    @given(value_lists)
    def test_wire_round_trip(self, xs):
        snap = fill(xs).snapshot()
        assert isinstance(snap, SketchSnapshot)
        decoded = decode(encode(snap))
        assert decoded == snap
        assert state(QuantileSketch.from_snapshot(decoded)) == state(fill(xs))

    @settings(max_examples=60)
    @given(value_lists)
    def test_json_round_trip(self, xs):
        import json

        sketch = fill(xs)
        data = json.loads(json.dumps(sketch.to_dict()))
        restored = QuantileSketch.from_dict(data)
        assert state(restored)[:2] == state(sketch)[:2]
        assert tuple(sorted(restored.buckets.items())) == tuple(
            sorted(sketch.buckets.items())
        )
        assert restored.total == sketch.total

    def test_snapshot_quantiles_match_live(self):
        rng = random.Random(10)
        sketch = fill([rng.expovariate(0.1) for _ in range(5_000)])
        restored = QuantileSketch.from_snapshot(sketch.snapshot())
        for q in QUANTILES:
            assert restored.quantile(q) == sketch.quantile(q)
