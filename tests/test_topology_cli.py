"""Tests for topology builders and the CLI experiment runner."""

import json
import os

import pytest

from repro.cli import discover_experiments, main
from repro.sim import FixedLatency, Network, Scheduler
from repro.sim.topology import chain_sets, clusters, ring, star


def probe_net():
    sched = Scheduler()
    net = Network(sched, latency=FixedLatency(999.0))
    arrivals = {}
    for site in range(6):
        net.register(site, lambda src, p, s=site: arrivals.setdefault((src, s), sched.now))
    return sched, net, arrivals


def latency_between(sched, net, arrivals, src, dst):
    arrivals.clear()
    start = sched.now
    net.send(src, dst, "probe")
    sched.run_until_quiescent()
    return arrivals[(src, dst)] - start


class TestStar:
    def test_hub_spoke_latencies(self):
        sched, net, arrivals = probe_net()
        star(net, hub=0, spokes=[1, 2, 3], spoke_ms=10.0)
        assert latency_between(sched, net, arrivals, 0, 1) == 10.0
        assert latency_between(sched, net, arrivals, 2, 0) == 10.0
        assert latency_between(sched, net, arrivals, 1, 3) == 20.0  # via hub


class TestRing:
    def test_hop_distances(self):
        sched, net, arrivals = probe_net()
        ring(net, sites=[0, 1, 2, 3, 4, 5], hop_ms=5.0)
        assert latency_between(sched, net, arrivals, 0, 1) == 5.0
        assert latency_between(sched, net, arrivals, 0, 3) == 15.0
        # Shortest way around the ring.
        assert latency_between(sched, net, arrivals, 0, 5) == 5.0


class TestClusters:
    def test_lan_vs_wan(self):
        sched, net, arrivals = probe_net()
        clusters(net, groups=[[0, 1, 2], [3, 4, 5]], lan_ms=2.0, wan_ms=50.0)
        assert latency_between(sched, net, arrivals, 0, 1) == 2.0
        assert latency_between(sched, net, arrivals, 0, 4) == 50.0
        assert latency_between(sched, net, arrivals, 5, 3) == 2.0


class TestChainSets:
    def test_paper_chain(self):
        assert chain_sets(7) == [[0, 1, 2], [2, 3, 4], [4, 5, 6]]

    def test_no_full_set_falls_back(self):
        assert chain_sets(2) == [[0, 1]]

    def test_overlap_validation(self):
        with pytest.raises(ValueError):
            chain_sets(9, set_size=2, overlap=2)

    def test_custom_sizes(self):
        groups = chain_sets(10, set_size=4, overlap=2)
        assert groups[0] == [0, 1, 2, 3]
        assert groups[1] == [2, 3, 4, 5]


class TestCli:
    def test_discover_finds_all_experiments(self):
        experiments = discover_experiments()
        for exp in ("E1", "E2", "E6", "E10", "E13"):
            assert exp in experiments

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E6" in out

    def test_bench_command_runs_experiment(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(os.getcwd())  # benchmarks dir resolvable
        assert main(["bench", "E1"]) == 0
        out = capsys.readouterr().out
        assert "commit latency" in out
        assert "2t" in out

    def test_bench_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["bench", "E99"])

    def test_bench_requires_selection(self):
        with pytest.raises(SystemExit):
            main(["bench"])

    def test_examples_command(self, capsys):
        assert main(["examples"]) == 0
        out = capsys.readouterr().out
        assert "quickstart.py" in out

    def test_bench_json_output(self, capsys):
        assert main(["bench", "E1", "--json"]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out)
        (record,) = doc["experiments"]
        assert record["id"] == "E1"
        assert record["table"]["headers"]
        assert record["table"]["rows"]

    def test_bench_jobs_matches_serial_byte_for_byte(self, capsys):
        results_file = os.path.join("benchmarks", "results", "E1.txt")
        assert main(["bench", "E1"]) == 0
        serial_out = capsys.readouterr().out
        with open(results_file) as fh:
            serial_artifact = fh.read()
        assert main(["bench", "E1", "--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        with open(results_file) as fh:
            parallel_artifact = fh.read()
        assert parallel_out == serial_out
        assert parallel_artifact == serial_artifact

    def test_module_cache_loads_each_bench_once(self):
        import repro.cli as cli

        cli._MODULE_CACHE.clear()
        path = discover_experiments()["E1"]
        first = cli._load_module(path)
        second = cli._load_module(path)
        assert first is second
