"""Bounded-exhaustive model checker (repro.explore.mc).

Covers: deterministic enumeration (same config -> byte-identical schedule
set and stats), POR soundness by full-vs-reduced cross-check, a clean
verdict on the healthy protocol, each mutation canary caught at the
smallest config exposing it, schedule-artifact replay byte-identity, and
the bounding knobs (fault rejection, max_schedules truncation, fixed-
schedule divergence errors).
"""

import json

import pytest

from repro.errors import ReproError
from repro.explore.campaign import artifact_json
from repro.explore.mc import (
    CANARY_CONFIGS,
    canary_config,
    cross_check,
    explore,
    mc_artifact_for,
    replay_mc_artifact,
    run_schedule,
    terminal_fingerprint,
)
from repro.explore.plan import FaultEvent, exhaustive_config


def tiny(views=False, mutations=()):
    return exhaustive_config(2, [(0, "rmw"), (1, "rmw")], views=views, mutations=mutations)


# ----------------------------------------------------------------------
# Determinism and enumeration
# ----------------------------------------------------------------------


def test_exploration_is_deterministic():
    a = explore(tiny(), por=True, keep_schedules=True)
    b = explore(tiny(), por=True, keep_schedules=True)
    assert a.stats.to_dict() == b.stats.to_dict()
    assert a.schedules == b.schedules
    assert sorted(a.outcomes) == sorted(b.outcomes)


def test_full_and_por_explore_same_terminal_states():
    full = explore(tiny(), por=False)
    red = explore(tiny(), por=True)
    assert full.exhausted and red.exhausted
    assert full.stats.schedules > red.stats.schedules  # reduction is real
    assert set(full.outcomes) == set(red.outcomes)  # and lossless
    assert full.violation_keys() == red.violation_keys()


def test_every_schedule_is_distinct_and_replayable():
    result = explore(tiny(), por=False, keep_schedules=True)
    seen = {tuple(map(tuple, s)) for s in result.schedules}
    assert len(seen) == result.stats.schedules
    # Each enumerated schedule replays to a terminal state the DFS saw.
    fingerprints = set(result.outcomes)
    for schedule in result.schedules:
        assert terminal_fingerprint(run_schedule(tiny(), schedule)) in fingerprints


def test_healthy_protocol_is_clean_exhaustively():
    result = explore(tiny(views=True), por=True)
    assert result.exhausted
    assert result.ok, [str(v) for vs in result.outcomes.values() for v in vs]


def test_cross_check_proves_por_sound_on_tiny_config():
    verdict = cross_check(tiny())
    assert verdict["violations_match"]
    assert verdict["outcomes_match"]
    assert 0 < verdict["por_schedules"] <= verdict["full_schedules"]


@pytest.mark.slow
def test_cross_check_2s2t_with_views_meets_reduction_target():
    # The canonical 2-site/2-transaction config (views attached, the
    # default): POR must cover the same outcomes and violations while
    # exploring at most 30% of the unreduced interleavings.  Measured:
    # 4428 full vs 10 POR schedules.
    verdict = cross_check(tiny(views=True))
    assert verdict["violations_match"]
    assert verdict["outcomes_match"]
    assert verdict["ratio"] <= 0.30


# ----------------------------------------------------------------------
# Mutation canaries
# ----------------------------------------------------------------------


def _assert_caught(mutation):
    spec = CANARY_CONFIGS[mutation]
    result = explore(canary_config(mutation), por=True, stop_on_violation=True)
    assert not result.ok, f"{mutation} not caught"
    oracles = {key[0] for key in result.violation_keys()}
    assert oracles <= spec["oracles"], f"{mutation} reported by unexpected oracles {oracles}"


def test_mc_catches_skip_rl_check():
    _assert_caught("skip_rl_check")


@pytest.mark.slow
def test_mc_catches_skip_nc_check():
    # Needs 3 sites: with 2, one transaction is primary-local and Lamport
    # receive-bumps put its VT above any delivered propagate, so no
    # reachable schedule writes inside another txn's reserved interval.
    _assert_caught("skip_nc_check")


def test_mc_catches_views_pre_commit():
    _assert_caught("views_pre_commit")


def test_healthy_canary_configs_are_clean():
    # The canary configs themselves must be violation-free without the
    # mutation — otherwise "caught" would be vacuous.
    for mutation, spec in CANARY_CONFIGS.items():
        if spec["n_sites"] > 2:
            continue  # 3-site healthy sweep is covered by the slow tests
        healthy = exhaustive_config(spec["n_sites"], spec["txns"], views=spec["views"])
        result = explore(healthy, por=True)
        assert result.ok, f"healthy {mutation} config violates: {result.violating()}"


# ----------------------------------------------------------------------
# Artifacts
# ----------------------------------------------------------------------


def test_mc_artifact_replays_byte_identically():
    result = explore(tiny(mutations=("skip_rl_check",)), por=True)
    assert not result.ok
    _fp, schedule, violations = result.violating()[0]
    artifact = mc_artifact_for(tiny(mutations=("skip_rl_check",)), schedule, violations)
    # Round-trip through JSON text, as the CLI does.
    loaded = json.loads(artifact_json(artifact))
    regenerated, identical = replay_mc_artifact(loaded)
    assert identical
    assert regenerated["violations"] == loaded["violations"]


def test_mc_artifact_rejects_unknown_format():
    with pytest.raises(ReproError):
        replay_mc_artifact({"format": "bogus/9", "config": {}, "schedule": []})


def test_run_schedule_rejects_diverging_schedule():
    result = explore(tiny(), por=False, keep_schedules=True)
    schedule = list(result.schedules[0])
    schedule[0] = ("msg", 99, 98, 0)  # never enabled
    with pytest.raises(ReproError):
        run_schedule(tiny(), schedule)


# ----------------------------------------------------------------------
# Bounds
# ----------------------------------------------------------------------


def test_explore_rejects_faulty_configs():
    config = tiny()
    config.faults.append(FaultEvent(at_ms=10.0, kind="crash", args={"site": 1}))
    with pytest.raises(ReproError):
        explore(config)


def test_max_schedules_truncates_and_reports_it():
    result = explore(tiny(views=True), por=False, max_schedules=5)
    assert not result.exhausted
    assert result.stats.schedules == 5


def test_stop_on_violation_short_circuits():
    result = explore(
        tiny(mutations=("skip_rl_check",)), por=False, stop_on_violation=True
    )
    assert not result.ok
    assert not result.exhausted
    full = explore(tiny(mutations=("skip_rl_check",)), por=False)
    assert result.stats.runs <= full.stats.runs
