"""Public-API surface tests: exports, error hierarchy, version."""

import pytest

import repro
from repro import errors


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_version(self):
        assert repro.__version__
        major = int(repro.__version__.split(".")[0])
        assert major >= 1

    def test_core_classes_exported(self):
        for name in (
            "Session",
            "SiteRuntime",
            "DInt",
            "DFloat",
            "DString",
            "DList",
            "DMap",
            "Association",
            "Transaction",
            "View",
            "Snapshot",
            "VirtualTime",
        ):
            assert name in repro.__all__

    def test_subpackages_importable(self):
        import repro.apps
        import repro.baselines
        import repro.bench
        import repro.cli
        import repro.persist
        import repro.sim
        import repro.sim.topology
        import repro.sim.trace
        import repro.transport
        import repro.vtime
        import repro.workloads


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "TransactionAborted",
            "ConcurrencyConflict",
            "ObjectNotFound",
            "InvalidPath",
            "NotAuthorized",
            "SiteFailed",
            "ProtocolError",
            "SimulationError",
            "TransportError",
            "RetryLimitExceeded",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError), name

    def test_single_except_clause_catches_everything(self):
        caught = []
        for cls in (errors.InvalidPath, errors.TransportError, errors.ProtocolError):
            try:
                raise cls("boom")
            except errors.ReproError as exc:
                caught.append(type(exc))
        assert len(caught) == 3

    def test_programming_errors_not_swallowed(self):
        assert not issubclass(TypeError, errors.ReproError)
        assert not issubclass(ValueError, errors.ReproError)


class TestDocstrings:
    def test_every_public_module_is_documented(self):
        import importlib
        import pkgutil

        undocumented = []
        for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(module_info.name)
            if not (module.__doc__ or "").strip():
                undocumented.append(module_info.name)
        assert undocumented == []

    def test_every_exported_class_is_documented(self):
        undocumented = [
            name
            for name in repro.__all__
            if isinstance(getattr(repro, name), type)
            and not (getattr(repro, name).__doc__ or "").strip()
        ]
        assert undocumented == []
