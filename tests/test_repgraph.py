"""Tests for replication graphs and primary-copy selection."""

import pytest

from repro.core.repgraph import (
    GraphNode,
    ReplicationGraph,
    default_primary_selector,
    primary_site,
)
from repro.errors import ProtocolError


def singleton(uid="s0:x", site=0):
    return ReplicationGraph.singleton(uid, site)


class TestConstruction:
    def test_singleton(self):
        graph = singleton()
        assert graph.sites() == [0]
        assert graph.uids() == ["s0:x"]
        assert graph.is_singleton()

    def test_empty_graph_rejected(self):
        with pytest.raises(ProtocolError):
            ReplicationGraph(nodes=frozenset())

    def test_merge_two_singletons(self):
        merged = singleton("s0:x", 0).merge(singleton("s1:x", 1), ("s0:x", "s1:x"))
        assert merged.sites() == [0, 1]
        assert frozenset({"s0:x", "s1:x"}) in merged.edges

    def test_merge_requires_known_nodes(self):
        with pytest.raises(ProtocolError):
            singleton("s0:x", 0).merge(singleton("s1:x", 1), ("s0:x", "s9:zzz"))

    def test_merge_is_commutative_on_nodes(self):
        a, b = singleton("s0:x", 0), singleton("s1:x", 1)
        ab = a.merge(b, ("s0:x", "s1:x"))
        ba = b.merge(a, ("s1:x", "s0:x"))
        assert ab.nodes == ba.nodes

    def test_three_way_merge(self):
        graph = singleton("s0:x", 0).merge(singleton("s1:x", 1), ("s0:x", "s1:x"))
        graph = graph.merge(singleton("s2:x", 2), ("s1:x", "s2:x"))
        assert graph.sites() == [0, 1, 2]
        assert len(graph.edges) == 2


class TestRemoval:
    def _triple(self):
        graph = singleton("s0:x", 0).merge(singleton("s1:x", 1), ("s0:x", "s1:x"))
        return graph.merge(singleton("s2:x", 2), ("s1:x", "s2:x"))

    def test_without_site(self):
        remaining = self._triple().without_site(1)
        assert remaining.sites() == [0, 2]
        # Edges referencing the removed node are dropped.
        assert all("s1:x" not in e for e in remaining.edges)

    def test_without_site_all_gone(self):
        assert singleton().without_site(0) is None

    def test_without_node(self):
        remaining = self._triple().without_node("s2:x")
        assert remaining.uids() == ["s0:x", "s1:x"]

    def test_without_node_last(self):
        assert singleton().without_node("s0:x") is None


class TestQueries:
    def test_uid_at_site(self):
        graph = singleton("s0:x", 0).merge(singleton("s1:y", 1), ("s0:x", "s1:y"))
        assert graph.uid_at_site(0) == "s0:x"
        assert graph.uid_at_site(1) == "s1:y"
        assert graph.uid_at_site(5) is None

    def test_multiple_replicas_per_site_rejected(self):
        graph = ReplicationGraph(
            nodes=frozenset({GraphNode(0, "s0:x"), GraphNode(0, "s0:y")})
        )
        with pytest.raises(ProtocolError):
            graph.uid_at_site(0)

    def test_site_of(self):
        graph = singleton("s3:q", 3)
        assert graph.site_of("s3:q") == 3
        with pytest.raises(ProtocolError):
            graph.site_of("nope")

    def test_contains_uid(self):
        graph = singleton("s3:q", 3)
        assert graph.contains_uid("s3:q")
        assert not graph.contains_uid("s3:r")

    def test_len(self):
        graph = singleton().merge(singleton("s1:x", 1), ("s0:x", "s1:x"))
        assert len(graph) == 2


class TestPrimarySelection:
    def test_default_selector_min_site(self):
        graph = singleton("s2:x", 2).merge(singleton("s1:x", 1), ("s2:x", "s1:x"))
        assert default_primary_selector(graph) == GraphNode(1, "s1:x")
        assert primary_site(graph) == 1

    def test_selector_is_pure_function_of_graph(self):
        # The paper requires every site to compute the same primary with no
        # election: identical graphs must yield identical primaries.
        g1 = singleton("s0:x", 0).merge(singleton("s1:x", 1), ("s0:x", "s1:x"))
        g2 = singleton("s1:x", 1).merge(singleton("s0:x", 0), ("s1:x", "s0:x"))
        assert default_primary_selector(g1) == default_primary_selector(g2)

    def test_custom_selector(self):
        graph = singleton("s0:x", 0).merge(singleton("s1:x", 1), ("s0:x", "s1:x"))
        highest = lambda g: max(g.nodes)
        assert primary_site(graph, highest) == 1

    def test_primary_changes_after_site_removal(self):
        graph = singleton("s0:x", 0).merge(singleton("s1:x", 1), ("s0:x", "s1:x"))
        assert primary_site(graph) == 0
        assert primary_site(graph.without_site(0)) == 1
