"""Tests for pessimistic view notification (paper section 4.2).

The two guarantees under test:

1. never show any uncommitted or inconsistent values, and
2. show all committed values, losslessly, in monotonic order of updates.
"""

import pytest

from repro import Session, View
from repro import DInt


class RecordingView(View):
    def __init__(self, site, objects):
        self.site = site
        self.objects = list(objects)
        self.updates = []  # (time, {name: value}, changed names)

    def update(self, changed, snapshot):
        values = {obj.name: snapshot.read(obj) for obj in self.objects}
        self.updates.append(
            (self.site.transport.now(), values, sorted(o.name for o in changed))
        )

    @property
    def values_seen(self):
        return [u[1] for u in self.updates]


def two_party(latency=50.0, **kwargs):
    session = Session.simulated(latency_ms=latency, **kwargs)
    alice, bob = session.add_sites(2)
    a, b = session.replicate(DInt, "x", [alice, bob], initial=0)
    session.settle()
    return session, alice, bob, a, b


class TestBasics:
    def test_initial_committed_state_on_attach(self):
        session, alice, bob, a, b = two_party()
        view = RecordingView(bob, [b])
        b.attach(view, "pessimistic")
        assert view.values_seen == [{"x": 0}]

    def test_never_shows_uncommitted(self):
        session, alice, bob, a, b = two_party(latency=50.0, delegation_enabled=False)
        view = RecordingView(bob, [b])
        b.attach(view, "pessimistic")
        bob.transact(lambda: b.set(9))
        # Optimistically applied locally, but the pessimistic view must wait.
        assert view.values_seen == [{"x": 0}]
        session.settle()
        assert view.values_seen == [{"x": 0}, {"x": 9}]

    def test_lossless_monotonic_delivery(self):
        session, alice, bob, a, b = two_party(latency=30.0)
        view = RecordingView(bob, [b])
        b.attach(view, "pessimistic")
        for v in (1, 2, 3):
            alice.transact(lambda v=v: a.set(v))
            session.settle()
        assert view.values_seen == [{"x": 0}, {"x": 1}, {"x": 2}, {"x": 3}]

    def test_rapid_updates_all_delivered(self):
        """Unlike optimistic views, no committed update is skipped."""
        session, alice, bob, a, b = two_party(latency=30.0)
        view = RecordingView(bob, [b])
        b.attach(view, "pessimistic")
        for v in (1, 2, 3, 4, 5):
            alice.transact(lambda v=v: a.set(v))  # no settle in between
        session.settle()
        assert view.values_seen == [{"x": n} for n in range(6)]

    def test_aborted_transaction_never_notified(self):
        session, alice, bob, a, b = two_party(latency=50.0)
        view = RecordingView(bob, [b])
        b.attach(view, "pessimistic")
        # Conflict: both read-modify-write; one side aborts and re-executes.
        alice.transact(lambda: a.set(a.get() + 1))
        bob.transact(lambda: b.set(b.get() + 10))
        session.settle()
        values = [u[1]["x"] for u in view.updates]
        # Final value reflects both increments exactly once; every shown
        # value is a committed one (0, then intermediate, then 11).
        assert values[-1] == 11
        assert values == sorted(values, key=lambda v: values.index(v))  # stable order
        # The rolled-back optimistic value (10 from the aborted attempt, if
        # bob's txn aborted) must never have been shown unless it was the
        # committed serialization order.
        assert all(v in (0, 1, 10, 11) for v in values)


class TestLatency:
    """Section 5.1.2's pessimistic notification latency analysis."""

    def test_origin_notified_in_2t_when_primary_remote(self):
        session, alice, bob, a, b = two_party(latency=50.0)
        view = RecordingView(bob, [b])
        b.attach(view, "pessimistic")
        t0 = session.scheduler.now
        bob.transact(lambda: b.set(1))  # primary at alice
        session.settle()
        assert view.updates[-1][0] == t0 + 100.0  # 2t

    def test_origin_notified_immediately_when_primary_local(self):
        session, alice, bob, a, b = two_party(latency=50.0)
        view = RecordingView(alice, [a])
        a.attach(view, "pessimistic")
        t0 = session.scheduler.now
        alice.transact(lambda: a.set(1))
        assert view.updates[-1][0] == t0

    def test_remote_site_notified_within_3t(self):
        session, alice, bob, a, b = two_party(latency=50.0, delegation_enabled=False)
        view = RecordingView(alice, [a])
        a.attach(view, "pessimistic")
        t0 = session.scheduler.now
        bob.transact(lambda: b.set(1))
        session.settle()
        assert view.updates[-1][0] <= t0 + 150.0  # 3t bound

    def test_delegation_speeds_up_remote_pessimistic_view(self):
        session, alice, bob, a, b = two_party(latency=50.0, delegation_enabled=True)
        view = RecordingView(alice, [a])
        a.attach(view, "pessimistic")
        t0 = session.scheduler.now
        bob.transact(lambda: b.set(1))
        session.settle()
        # The delegate (alice, the primary) commits locally at t.
        assert view.updates[-1][0] == t0 + 50.0


class TestMultiObject:
    def test_snapshot_consistency_across_objects(self):
        """A pessimistic view over two objects never sees a mixed state that
        contradicts the commit order."""
        session = Session.simulated(latency_ms=25)
        alice, bob = session.add_sites(2)
        a1, b1 = session.replicate(DInt, "m1", [alice, bob], initial=0)
        a2, b2 = session.replicate(DInt, "m2", [alice, bob], initial=0)
        session.settle()
        view = RecordingView(bob, [b1, b2])
        bob.views.attach(view, [b1, b2], "pessimistic")

        def both():
            a1.set(1)
            a2.set(1)

        alice.transact(both)
        session.settle()
        # The multi-object transaction appears atomically: no state with
        # m1 == 1 and m2 == 0 (or vice versa) is ever shown.
        for values in view.values_seen:
            assert values in ({"m1": 0, "m2": 0}, {"m1": 1, "m2": 1})
        assert view.values_seen[-1] == {"m1": 1, "m2": 1}

    def test_straggler_revision(self):
        """A committed straggler inserts an earlier snapshot; the later
        snapshot's RL guess is revised and order stays monotonic."""
        session = Session.simulated(latency_ms=10)
        s0, s1, s2 = session.add_sites(3)
        xs = session.replicate(DInt, "m1", [s0, s1, s2], initial=0)
        ys = session.replicate(DInt, "m2", [s0, s1, s2], initial=0)
        session.settle()
        from repro.sim.network import FixedLatency

        session.network.set_link_latency(1, 2, FixedLatency(300.0))
        view = RecordingView(s2, [xs[2], ys[2]])
        s2.views.attach(view, [xs[2], ys[2]], "pessimistic")
        s1.transact(lambda: ys[1].set(5))  # older VT, slow to s2
        session.run_for(50)
        s0.transact(lambda: xs[0].set(7))  # newer VT, fast to s2
        session.settle()
        # Monotonic: m2's (earlier) update must be shown before m1's.
        assert view.values_seen[-1] == {"m1": 7, "m2": 5}
        m2_first = next(i for i, v in enumerate(view.values_seen) if v["m2"] == 5)
        m1_first = next(i for i, v in enumerate(view.values_seen) if v["m1"] == 7)
        assert m2_first < m1_first


class TestMixedViews:
    def test_optimistic_leads_pessimistic(self):
        """Section 5.1.2: an optimistic notification precedes the
        corresponding pessimistic one (by 2t at the origin's remote peer)."""
        session, alice, bob, a, b = two_party(latency=50.0, delegation_enabled=False)
        opt = RecordingView(bob, [b])
        pess = RecordingView(bob, [b])
        b.attach(opt, "optimistic")
        b.attach(pess, "pessimistic")
        bob.transact(lambda: b.set(1))
        session.settle()
        opt_t = next(t for t, v, _ in opt.updates if v == {"x": 1})
        pess_t = next(t for t, v, _ in pess.updates if v == {"x": 1})
        assert pess_t - opt_t == 100.0  # 2t earlier

    def test_same_final_state(self):
        session, alice, bob, a, b = two_party(latency=40.0)
        opt = RecordingView(bob, [b])
        pess = RecordingView(bob, [b])
        b.attach(opt, "optimistic")
        b.attach(pess, "pessimistic")
        for v in (1, 2, 3):
            alice.transact(lambda v=v: a.set(v))
        session.settle()
        assert opt.updates[-1][1] == pess.updates[-1][1] == {"x": 3}
