"""Tests for the persistence store and recovery (paper §5.3 roadmap)."""

import json

import pytest

from repro import Session
from repro import DInt
from repro.persist import (
    CheckpointError,
    checkpoint_site,
    checkpoint_to_json,
    restore_from_json,
    restore_site,
)


def value(obj):
    return obj.value_at(obj.current_value_vt())


def make_populated_site():
    session = Session.simulated(latency_ms=10)
    site = session.add_site("app")

    site.create_int("count", 0)
    site.create_string("title", "")
    doc = site.create_list("doc")
    board = site.create_map("board")

    def fill():
        site.objects["s0:count"].set(42)
        site.objects["s0:title"].set("hello")
        doc.append("string", "a")
        inner = doc.append("list", [("int", 1), ("int", 2)])
        board.put("k1", "float", 1.5)
        board.put("k2", "map", {"nested": ("string", "deep")})

    site.transact(fill)
    session.settle()
    return session, site


class TestCheckpoint:
    def test_checkpoint_structure(self):
        _, site = make_populated_site()
        doc = checkpoint_site(site)
        assert doc["format"] == 1
        assert doc["site_id"] == 0
        assert set(doc["objects"]) == {"count", "title", "doc", "board"}
        assert doc["objects"]["count"]["value"] == 42

    def test_checkpoint_is_json_serializable(self):
        _, site = make_populated_site()
        payload = checkpoint_to_json(site, indent=2)
        parsed = json.loads(payload)
        assert parsed["objects"]["title"]["value"] == "hello"

    def test_uncommitted_state_excluded(self):
        # Disable delegation so alice (the primary) does not commit at t.
        session = Session.simulated(latency_ms=50, delegation_enabled=False)
        alice, bob = session.add_sites(2)
        objs = session.replicate(DInt, "x", [alice, bob], initial=1)
        session.settle()
        bob.transact(lambda: objs[1].set(99))  # uncommitted at alice for 3t
        session.run_for(60)  # applied at alice, commit not yet arrived
        doc = checkpoint_site(alice)
        assert doc["objects"]["x"]["value"] == 1  # committed state only
        session.settle()
        doc = checkpoint_site(alice)
        assert doc["objects"]["x"]["value"] == 99


class TestRestore:
    def test_roundtrip_values(self):
        _, site = make_populated_site()
        payload = checkpoint_to_json(site)
        fresh_session = Session.simulated(latency_ms=10)
        fresh = fresh_session.add_site("app")
        restored = restore_from_json(fresh, payload)
        assert restored["count"].get() == 42
        assert restored["title"].get() == "hello"
        assert value(restored["doc"]) == ["a", [1, 2]]
        assert value(restored["board"]) == {"k1": 1.5, "k2": {"nested": "deep"}}

    def test_restored_objects_are_usable(self):
        _, site = make_populated_site()
        doc = checkpoint_site(site)
        fresh_session = Session.simulated(latency_ms=10)
        fresh = fresh_session.add_site("app")
        restored = restore_site(fresh, doc)
        out = fresh.transact(lambda: restored["count"].set(43))
        fresh_session.settle()
        assert out.committed
        assert restored["count"].get() == 43

    def test_clock_advances_past_checkpoint(self):
        _, site = make_populated_site()
        doc = checkpoint_site(site)
        fresh_session = Session.simulated(latency_ms=10)
        fresh = fresh_session.add_site("app")
        restore_site(fresh, doc)
        assert fresh.clock.counter >= doc["clock"]

    def test_slot_identities_preserved(self):
        _, site = make_populated_site()
        doc = checkpoint_site(site)
        original = site.objects["s0:doc"]._slots[0].slot_id
        fresh_session = Session.simulated(latency_ms=10)
        fresh = fresh_session.add_site("app")
        restored = restore_site(fresh, doc)
        assert restored["doc"]._slots[0].slot_id == original

    def test_bad_format_rejected(self):
        fresh = Session().add_site()
        with pytest.raises(CheckpointError):
            restore_site(fresh, {"format": 99, "objects": {}, "clock": 0})

    def test_bad_json_rejected(self):
        fresh = Session().add_site()
        with pytest.raises(CheckpointError):
            restore_from_json(fresh, "{not json")


class TestRecoveryScenario:
    def test_restart_and_rejoin(self):
        """A site crashes, restarts from its checkpoint, and rejoins the
        collaboration; state reconciles through the join sync."""
        session = Session.simulated(latency_ms=20)
        alice, bob = session.add_sites(2)
        objs = session.replicate(DInt, "x", [alice, bob], initial=5)
        session.settle()
        # Bob checkpoints, then crashes.
        payload = checkpoint_to_json(bob)
        session.network.fail_site(1)
        session.settle()
        # Alice keeps working while bob is down.
        alice.transact(lambda: objs[0].set(7))
        session.settle()
        # Bob restarts as a NEW site runtime, restores, and rejoins.
        bob2 = session.add_site("bob-restarted")
        restored = restore_from_json(bob2, payload)
        assert restored["x"].get() == 5  # last committed before the crash
        assoc_a = alice.objects["s0:x.assoc"]
        assoc_b2 = bob2.import_invitation(assoc_a.make_invitation(), "x.assoc")
        session.settle()
        out = bob2.join(assoc_b2, "x.rel", restored["x"])
        session.settle()
        assert out.committed
        # The join sync reconciled the missed update.
        assert restored["x"].get() == 7
        # And the recovered site collaborates normally.
        bob2.transact(lambda: restored["x"].set(8))
        session.settle()
        assert objs[0].get() == 8

    def test_full_cluster_restart(self):
        """All sites checkpoint, go down, and a new cluster restores and
        re-establishes the relationship — values survive."""
        session = Session.simulated(latency_ms=20)
        alice, bob = session.add_sites(2)
        objs = session.replicate(DInt, "x", [alice, bob], initial=0)
        alice.transact(lambda: objs[0].set(123))
        session.settle()
        checkpoint_a = checkpoint_to_json(alice)

        session2 = Session.simulated(latency_ms=20)
        new_a, new_b = session2.add_sites(2)
        restored_a = restore_from_json(new_a, checkpoint_a)
        assert restored_a["x"].get() == 123
        # Re-establish collaboration from the restored association... the
        # association's membership references dead uids, so create fresh.
        assoc = new_a.create_association("x.assoc2")
        new_a.transact(lambda: assoc.create_relationship("x.rel"))
        session2.settle()
        new_a.join(assoc, "x.rel", restored_a["x"])
        session2.settle()
        b_obj = new_b.create_int("x", 0)
        assoc_b = new_b.import_invitation(assoc.make_invitation(), "x.assoc2")
        session2.settle()
        new_b.join(assoc_b, "x.rel", b_obj)
        session2.settle()
        assert b_obj.get() == 123
