"""Tests for the headless example applications (repro.apps)."""

import pytest

from repro import Session
from repro.apps import AccountBook, ChatRoom, FormDocument, TransferTransaction, Whiteboard
from repro import DFloat, DList, DMap


def pair_session(latency=20.0):
    session = Session.simulated(latency_ms=latency)
    alice, bob = session.add_sites(2)
    return session, alice, bob


class TestAccountBook:
    def test_open_and_deposit(self):
        session, alice, _ = pair_session()
        book = AccountBook(alice)
        book.open("checking", 100.0)
        out = book.deposit("checking", 50.0)
        session.settle()
        assert out.committed
        assert book.balance("checking") == 150.0

    def test_transfer_success(self):
        session, alice, _ = pair_session()
        book = AccountBook(alice)
        book.open("a", 100.0)
        book.open("b", 0.0)
        txn = book.transfer("a", "b", 40.0)
        session.settle()
        assert txn.outcome.committed
        assert book.balance("a") == 60.0 and book.balance("b") == 40.0
        assert book.total() == 100.0

    def test_overdraft_aborts_without_retry(self):
        session, alice, _ = pair_session()
        book = AccountBook(alice)
        book.open("a", 10.0)
        book.open("b", 0.0)
        txn = book.transfer("a", "b", 99.0)
        session.settle()
        assert not txn.outcome.committed
        assert txn.outcome.attempts == 1
        assert txn.abort_reason == "Can't transfer more than balance"
        assert book.balance("a") == 10.0

    def test_replicated_transfer_conserves_total(self):
        session, alice, bob = pair_session()
        a_accts = session.replicate(DFloat, "checking", [alice, bob], initial=500.0)
        b_accts = session.replicate(DFloat, "savings", [alice, bob], initial=0.0)
        alice_book = AccountBook(alice)
        alice_book.adopt("checking", a_accts[0])
        alice_book.adopt("savings", b_accts[0])
        bob_book = AccountBook(bob)
        bob_book.adopt("checking", a_accts[1])
        bob_book.adopt("savings", b_accts[1])
        alice_book.transfer("checking", "savings", 200.0)
        bob_book.transfer("checking", "savings", 100.0)  # concurrent
        session.settle()
        assert alice_book.total() == bob_book.total() == 500.0
        assert alice_book.balance("savings") == 300.0


class TestChatRoom:
    def test_messages_propagate(self):
        session, alice, bob = pair_session()
        logs = session.replicate(DList, "chat", [alice, bob])
        room_a = ChatRoom(alice, logs[0], author="alice")
        room_b = ChatRoom(bob, logs[1], author="bob")
        room_a.send("hello")
        session.settle()
        room_b.send("hi back")
        session.settle()
        assert room_a.transcript() == room_b.transcript()
        assert room_a.transcript() == ["<alice> hello", "<bob> hi back"]

    def test_concurrent_sends_converge(self):
        session, alice, bob = pair_session(latency=60.0)
        logs = session.replicate(DList, "chat", [alice, bob])
        room_a = ChatRoom(alice, logs[0], author="alice")
        room_b = ChatRoom(bob, logs[1], author="bob")
        room_a.send("first?")
        room_b.send("no, me first")
        session.settle()
        assert room_a.transcript() == room_b.transcript()
        assert room_a.message_count() == 2

    def test_view_gets_commit_notifications(self):
        session, alice, bob = pair_session()
        logs = session.replicate(DList, "chat", [alice, bob])
        room_b = ChatRoom(bob, logs[1], author="bob")
        room_b.send("msg")
        session.settle()
        assert room_b.view.committed_notifications >= 1


class TestWhiteboard:
    def test_draw_and_render(self):
        session, alice, bob = pair_session()
        boards = session.replicate(DMap, "board", [alice, bob])
        wb_a, wb_b = Whiteboard(alice, boards[0]), Whiteboard(bob, boards[1])
        sid, out = wb_a.draw("circle", 1, 2, color="red")
        session.settle()
        assert out.committed
        assert wb_b.shapes()[sid] == {"kind": "circle", "x": 1.0, "y": 2.0, "color": "red"}
        assert wb_b.rendered() == wb_b.shapes()

    def test_move_preserves_kind_and_color(self):
        session, alice, bob = pair_session()
        boards = session.replicate(DMap, "board", [alice, bob])
        wb = Whiteboard(alice, boards[0])
        sid, _ = wb.draw("rect", 0, 0, color="blue")
        session.settle()
        wb.move(sid, 5, 6)
        session.settle()
        shape = wb.shapes()[sid]
        assert (shape["x"], shape["y"]) == (5.0, 6.0)
        assert shape["kind"] == "rect" and shape["color"] == "blue"

    def test_erase(self):
        session, alice, bob = pair_session()
        boards = session.replicate(DMap, "board", [alice, bob])
        wb_a, wb_b = Whiteboard(alice, boards[0]), Whiteboard(bob, boards[1])
        sid, _ = wb_a.draw("dot", 0, 0)
        session.settle()
        wb_b.erase(sid)
        session.settle()
        assert wb_a.shapes() == {} and wb_b.shapes() == {}

    def test_concurrent_draws_never_conflict(self):
        session, alice, bob = pair_session(latency=80.0)
        boards = session.replicate(DMap, "board", [alice, bob])
        wb_a, wb_b = Whiteboard(alice, boards[0]), Whiteboard(bob, boards[1])
        before = session.counters()["aborts_conflict"]
        for i in range(5):
            wb_a.draw("dot", i, 0, shape_id=f"a{i}")
            wb_b.draw("dot", 0, i, shape_id=f"b{i}")
        session.settle()
        assert session.counters()["aborts_conflict"] == before
        assert wb_a.shapes() == wb_b.shapes()
        assert len(wb_a.shapes()) == 10


class TestFormDocument:
    def test_fill_and_audit(self):
        session, alice, bob = pair_session()
        forms = session.replicate(DMap, "form", [alice, bob])
        doc_a, doc_b = FormDocument(alice, forms[0]), FormDocument(bob, forms[1])
        doc_a.fill(name="X", age=30)
        session.settle()
        assert doc_b.fields() == {"name": "X", "age": 30}
        # The audit trail contains only committed states.
        assert doc_b.audit_trail()[-1] == {"name": "X", "age": 30}

    def test_clear_field(self):
        session, alice, bob = pair_session()
        forms = session.replicate(DMap, "form", [alice, bob])
        doc = FormDocument(alice, forms[0])
        doc.fill(note="temp")
        session.settle()
        doc.clear("note")
        session.settle()
        assert doc.fields() == {}

    def test_audit_never_sees_uncommitted(self):
        session, alice, bob = pair_session(latency=100.0)
        forms = session.replicate(DMap, "form", [alice, bob])
        doc_a = FormDocument(alice, forms[0])
        doc_b = FormDocument(bob, forms[1])
        doc_b.fill(field="optimistic")
        # Before commit, bob's audit trail must not include the new state.
        assert all("field" not in state for state in doc_b.audit_trail())
        session.settle()
        assert doc_b.audit_trail()[-1] == {"field": "optimistic"}

    def test_protection(self):
        from repro.core.auth import ReadOnlyMonitor

        session, alice, bob = pair_session()
        forms = session.replicate(DMap, "form", [alice, bob])
        doc = FormDocument(bob, forms[1])
        doc.protect(ReadOnlyMonitor(owner="somebody-else"))
        out = doc.fill(hack=1)
        assert out.aborted_no_retry

    def test_bool_rejected(self):
        session, alice, _ = pair_session()
        doc = FormDocument.create(alice)
        out = doc.fill(flag=True)
        assert out.aborted_no_retry
