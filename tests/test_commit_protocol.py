"""Integration tests for the distributed concurrency-control protocol.

These exercise paper section 3 end-to-end on the simulated network:
optimistic execution, RL/NC/RC guess validation at primary copies, summary
commit/abort, automatic re-execution, blind-write semantics, delegated
commit, and the paper's Fig. 4/5 worked example.
"""

import pytest

from repro import Session
from repro import DInt


def two_party(latency=50.0, **kwargs):
    session = Session.simulated(latency_ms=latency, **kwargs)
    alice, bob = session.add_sites(2)
    a, b = session.replicate(DInt, "x", [alice, bob], initial=0)
    session.settle()
    return session, alice, bob, a, b


class TestBasicPropagation:
    def test_update_reaches_replica(self):
        session, alice, bob, a, b = two_party()
        alice.transact(lambda: a.set(7))
        session.settle()
        assert b.get() == 7

    def test_update_from_non_primary_site(self):
        session, alice, bob, a, b = two_party()
        bob.transact(lambda: b.set(9))
        session.settle()
        assert a.get() == 9

    def test_alternating_updates(self):
        session, alice, bob, a, b = two_party()
        for i in range(5):
            site, obj = (alice, a) if i % 2 == 0 else (bob, b)
            site.transact(lambda o=obj, v=i: o.set(v))
            session.settle()
        assert a.get() == b.get() == 4

    def test_three_party_propagation(self):
        session = Session.simulated(latency_ms=20)
        sites = session.add_sites(3)
        objs = session.replicate(DInt, "n", sites, initial=0)
        sites[2].transact(lambda: objs[2].set(5))
        session.settle()
        assert [o.get() for o in objs] == [5, 5, 5]

    def test_replica_value_is_optimistic_before_commit(self):
        # Delegation would let alice (the delegate) commit at t; disable it
        # so the summary commit takes the full origin round trip.
        session, alice, bob, a, b = two_party(latency=100.0, delegation_enabled=False)
        bob.transact(lambda: b.set(3))
        # After one hop the update is visible at alice but not yet committed.
        session.run_for(101)
        assert a.get() == 3
        assert not a.history.current().committed
        session.settle()
        assert a.history.current().committed


class TestCommitLatency:
    """The analytic model of section 5.1.1."""

    def test_local_primary_commits_immediately(self):
        session, alice, bob, a, b = two_party(latency=50.0)
        outcome = alice.transact(lambda: a.set(1))  # primary is alice
        assert outcome.committed
        assert outcome.commit_latency_ms == 0.0

    def test_single_remote_primary_commits_in_2t(self):
        session, alice, bob, a, b = two_party(latency=50.0)
        outcome = bob.transact(lambda: b.set(1))
        session.settle()
        assert outcome.commit_latency_ms == 100.0

    def test_single_remote_primary_without_delegation_also_2t(self):
        session, alice, bob, a, b = two_party(latency=50.0, delegation_enabled=False)
        outcome = bob.transact(lambda: b.set(1))
        session.settle()
        assert outcome.commit_latency_ms == 100.0

    def test_two_remote_primaries_commit_in_2t(self):
        session = Session.simulated(latency_ms=50)
        sites = session.add_sites(4)
        w = session.replicate(DInt, "w", [sites[0], sites[1], sites[2]], initial=4)
        y = session.replicate(DInt, "y", [sites[3], sites[1], sites[2]], initial=3)
        # Primary of w is site 0; y's members are sites 3,1,2 so its primary
        # is the minimum site among them (site 1)... choose an origin that
        # is remote from both primaries: site 2.
        def body():
            w[2].set(w[2].get() + 1)
            y[2].set(y[2].get() + 1)

        outcome = sites[2].transact(body)
        session.settle()
        assert outcome.committed
        assert outcome.commit_latency_ms == 100.0

    def test_remote_sites_commit_within_3t(self):
        session, alice, bob, a, b = two_party(latency=50.0, delegation_enabled=False)
        bob.transact(lambda: b.set(1))
        session.run_for(149)
        assert not a.history.current().committed
        session.run_for(2)  # 151 > 3t = 150
        assert a.history.current().committed


class TestGuessChecks:
    def test_rl_conflict_aborts_and_retries(self):
        """Two read-modify-writes race; one must abort and re-execute."""
        session, alice, bob, a, b = two_party(latency=50.0)
        alice.transact(lambda: a.set(a.get() + 1))
        bob.transact(lambda: b.set(b.get() + 1))  # concurrent: read stale 0
        session.settle()
        # Both increments must take effect exactly once (serialized).
        assert a.get() == b.get() == 2
        assert session.counters()["retries"] >= 1

    def test_blind_writes_never_conflict(self):
        """Section 5.1.2: with only blind writes, concurrency tests never fail."""
        session, alice, bob, a, b = two_party(latency=50.0)
        before = session.counters()["aborts_conflict"]  # setup joins may retry
        for i in range(5):
            alice.transact(lambda v=i: a.set(v))
            bob.transact(lambda v=i: b.set(100 + v))
        session.settle()
        assert session.counters()["aborts_conflict"] == before
        assert a.get() == b.get()  # converged (last writer by VT wins)

    def test_concurrent_blind_writes_converge_to_later_vt(self):
        session, alice, bob, a, b = two_party(latency=50.0)
        alice.transact(lambda: a.set(111))
        bob.transact(lambda: b.set(222))
        session.settle()
        assert a.get() == b.get()
        assert a.get() in (111, 222)

    def test_rc_dependency_delays_commit(self):
        """A transaction reading an uncommitted value cannot commit first."""
        session, alice, bob, a, b = two_party(latency=50.0)
        bob.transact(lambda: b.set(10))  # needs 2t to commit
        # Immediately read the uncommitted value at bob and write another
        # replicated object.
        c_alice, c_bob = session.replicate(DInt, "c", [alice, bob], initial=0)
        out2 = bob.transact(lambda: c_bob.set(b.get() + 5))
        session.settle()
        assert out2.committed
        assert c_alice.get() == 15

    def test_rc_abort_cascades(self):
        """If the read-from transaction aborts, the reader aborts and retries."""
        session = Session.simulated(latency_ms=50)
        s0, s1, s2 = session.add_sites(3)
        xs = session.replicate(DInt, "x", [s0, s1, s2], initial=0)
        ys = session.replicate(DInt, "y", [s1, s2], initial=0)
        # Create a conflict: s0 and s1 both read-modify-write x.
        s0.transact(lambda: xs[0].set(xs[0].get() + 100))
        t1 = s1.transact(lambda: xs[1].set(xs[1].get() + 1))
        # s1 immediately reads its own uncommitted x into y (RC guess on t1).
        t2 = s1.transact(lambda: ys[0].set(xs[1].get()))
        session.settle()
        # Everything settles consistently: x saw both increments, and y holds
        # a committed value derived from a committed x.
        assert [o.get() for o in xs] == [101, 101, 101]
        assert t1.committed and t2.committed
        assert ys[0].get() == ys[1].get()

    def test_write_write_is_not_a_conflict_for_blind_writes(self):
        """NC guesses only protect reads: two blind writes at different VTs
        both commit, ordered by VT."""
        session, alice, bob, a, b = two_party(latency=50.0)
        out1 = alice.transact(lambda: a.set(1))
        out2 = bob.transact(lambda: b.set(2))
        session.settle()
        assert out1.committed and out2.committed


class TestDelegatedCommit:
    def test_delegation_saves_messages(self):
        session1, alice1, bob1, a1, b1 = two_party(latency=50.0)
        base = session1.network.stats.messages_sent
        bob1.transact(lambda: b1.set(1))
        session1.settle()
        with_delegation = session1.network.stats.messages_sent - base

        session2, alice2, bob2, a2, b2 = two_party(latency=50.0, delegation_enabled=False)
        base = session2.network.stats.messages_sent
        bob2.transact(lambda: b2.set(1))
        session2.settle()
        without_delegation = session2.network.stats.messages_sent - base

        assert with_delegation < without_delegation

    def test_delegate_denial_retries_at_origin(self):
        session, alice, bob, a, b = two_party(latency=50.0)
        # alice writes, creating an entry bob's read misses.
        alice.transact(lambda: a.set(5))
        outcome = bob.transact(lambda: b.set(b.get() + 1))
        session.settle()
        assert outcome.committed
        assert a.get() == b.get() == 6

    def test_delegation_disabled_for_multi_primary(self):
        session = Session.simulated(latency_ms=50)
        sites = session.add_sites(4)
        w = session.replicate(DInt, "w", [sites[0], sites[2]], initial=0)
        y = session.replicate(DInt, "y", [sites[1], sites[2]], initial=0)

        def body():
            w[1].set(1)
            y[1].set(2)

        outcome = sites[2].transact(body)
        session.settle()
        assert outcome.committed
        assert w[0].get() == 1 and y[0].get() == 2


class TestPaperFig45Example:
    """The worked example of section 3.1: transaction T reads W and X,
    blind-writes Y, and read-modify-writes Z, with W,X replicated at sites
    1,2,3 (primary 1) and Y,Z replicated at sites 2,3,4 (primary 4); T
    originates at site 2."""

    def make(self):
        session = Session.simulated(latency_ms=50)
        s1, s2, s3, s4 = session.add_sites(4)
        # Force primaries: default selector picks min site, so replicate
        # W,X owned by site 1 and Y,Z owned by site 4... min site of
        # {1,2,3} is 1 (=site index 0 in our list). We map paper sites 1-4
        # to runtime sites 0-3; W,X at {0,1,2} primary 0; Y,Z at {1,2,3}:
        # min is 1, but the paper wants primary 4 (=3).  Use a custom
        # selector for Y/Z via a max-site session? Simpler: accept primary
        # 1 for Y,Z — the protocol structure (CONFIRM-READ to W/X primary,
        # WRITE to Y/Z replicas+primary) is identical.
        w = session.replicate(DInt, "w", [s1, s2, s3], initial=4)
        x = session.replicate(DInt, "x", [s1, s2, s3], initial=2)
        y = session.replicate(DInt, "y", [s2, s3, s4], initial=3)
        z = session.replicate(DInt, "z", [s2, s3, s4], initial=6)
        session.settle()
        return session, (s1, s2, s3, s4), w, x, y, z

    def test_transaction_T(self):
        session, sites, w, x, y, z = self.make()
        s1, s2, s3, s4 = sites

        def T():
            # if W + X > 5 then { Y := X; Z := Z + 3 } (reads W,X; blind-
            # writes Y; read-modify-writes Z)
            if w[1].get() + x[1].get() > 5:
                y[0].set(x[1].get())
                z[0].set(z[0].get() + 3)

        outcome = s2.transact(T)
        session.settle()
        assert outcome.committed
        assert [o.get() for o in y] == [2, 2, 2]
        assert [o.get() for o in z] == [9, 9, 9]
        # W and X unchanged everywhere.
        assert [o.get() for o in w] == [4, 4, 4]
        assert [o.get() for o in x] == [2, 2, 2]

    def test_conflicting_write_to_read_set_aborts_T(self):
        session, sites, w, x, y, z = self.make()
        s1, s2, s3, s4 = sites

        # s4 writes X's relationship? X lives at sites 0,1,2; write W from
        # s3 concurrently with T reading it at s2.
        def T():
            if w[1].get() + x[1].get() > 5:
                z[0].set(z[0].get() + 3)

        s3.transact(lambda: w[2].set(w[2].get() + 10))
        outcome = s2.transact(T)
        session.settle()
        assert outcome.committed  # after automatic re-execution
        assert [o.get() for o in w] == [14, 14, 14]
        assert [o.get() for o in z] == [9, 9, 9]


class TestStragglers:
    def test_straggler_write_is_ordered_by_vt(self):
        """A slow link delivers an older write after a newer one; history
        ordering by VT keeps the newer value current."""
        session = Session.simulated(latency_ms=10)
        s0, s1, s2 = session.add_sites(3)
        xs = session.replicate(DInt, "x", [s0, s1, s2], initial=0)
        session.settle()
        # Make s1 -> s2 very slow so s1's write arrives at s2 after s0's.
        from repro.sim.network import FixedLatency

        session.network.set_link_latency(1, 2, FixedLatency(500.0))
        s1.transact(lambda: xs[1].set(1))  # older VT, slow to reach s2
        session.run_for(50)
        s0.transact(lambda: xs[0].set(2))  # newer VT, fast
        session.settle()
        assert [o.get() for o in xs] == [2, 2, 2]

    def test_commit_arriving_before_write_is_remembered(self):
        """Delegated commits can outrun the origin's WRITE on a third site."""
        session = Session.simulated(latency_ms=10)
        s0, s1, s2 = session.add_sites(3)
        xs = session.replicate(DInt, "x", [s0, s1, s2], initial=0)
        session.settle()
        from repro.sim.network import FixedLatency

        # origin s2's write to s1 is slow; commit comes from s2 as well
        # (FIFO), so instead slow the origin->s1 link and use delegation
        # where the delegate (primary s0) sends COMMIT to s1 quickly.
        session.network.set_link_latency(2, 1, FixedLatency(500.0))
        outcome = s2.transact(lambda: xs[2].set(42))
        session.settle()
        assert outcome.committed
        assert [o.get() for o in xs] == [42, 42, 42]
        assert xs[1].history.current().committed


class TestRetriesAndLiveness:
    def test_heavy_contention_converges(self):
        session = Session.simulated(latency_ms=20)
        sites = session.add_sites(3)
        xs = session.replicate(DInt, "x", sites, initial=0)
        session.settle()
        for round_ in range(4):
            for i, site in enumerate(sites):
                site.transact(lambda o=xs[i]: o.set(o.get() + 1))
            session.settle()
        values = [o.get() for o in xs]
        assert values == [12, 12, 12]

    def test_retry_limit_surfaces(self):
        session, alice, bob, a, b = two_party(latency=50.0)
        session.max_retries  # default high; build a session with 0 retries
        s2 = Session.simulated(latency_ms=50, max_retries=0)
        alice2, bob2 = s2.add_sites(2)
        a2, b2 = s2.replicate(DInt, "x", [alice2, bob2], initial=0)
        s2.settle()
        alice2.transact(lambda: a2.set(a2.get() + 1))
        out = bob2.transact(lambda: b2.set(b2.get() + 1))
        s2.settle()
        if not out.committed:
            assert out.aborted_no_retry
            assert "retry limit" in out.abort_reason


class TestUserAborts:
    def test_exception_aborts_without_retry_and_calls_handle_abort(self):
        from repro import Transaction

        session, alice, bob, a, b = two_party()
        log = []

        class Overdraft(Transaction):
            def execute(self):
                if a.get() < 100:
                    raise RuntimeError("Can't transfer more than balance")
                a.set(a.get() - 100)

            def handle_abort(self, exc):
                log.append(str(exc))

        outcome = alice.run(Overdraft())
        session.settle()
        assert outcome.aborted_no_retry
        assert log == ["Can't transfer more than balance"]
        assert a.get() == 0 and b.get() == 0
        assert outcome.attempts == 1
