"""Tests for subtree state export/import (the join protocol's value sync)."""

import pytest

from repro import Session
from repro.core import sync as syncmod
from repro.core.messages import OpPayload
from repro.errors import ProtocolError


@pytest.fixture()
def site():
    return Session().add_site("a")


@pytest.fixture()
def other():
    return Session().add_site("b")


def value(obj):
    return obj.value_at(obj.current_value_vt())


class TestExport:
    def test_scalar_export(self, site):
        x = site.create_int("x", 3)
        site.transact(lambda: x.set(4))
        spec, sync_vt, pending = syncmod.export_state(x)
        assert spec[0] == "int"
        assert pending == []
        assert sync_vt == x.current_value_vt()

    def test_export_includes_uncommitted_suffix(self, site):
        # Fabricate an uncommitted entry (as a remote write would).
        x = site.create_int("x", 3)
        from repro.vtime import VirtualTime

        x.history.insert(VirtualTime(10, 9), 99, committed=False)
        spec, sync_vt, pending = syncmod.export_state(x)
        assert pending == [VirtualTime(10, 9)]
        entries = spec[1]
        assert entries[-1] == (VirtualTime(10, 9), 99, False)

    def test_list_export_preserves_slot_ids(self, site):
        lst = site.create_list("l")
        site.transact(lambda: [lst.append("int", i) for i in range(3)])
        spec, _, _ = syncmod.export_state(lst)
        kind, entries, slots = spec
        assert kind == "list"
        assert len(slots) == 3
        slot_ids = [s[0] for s in slots]
        assert len(set(slot_ids)) == 3

    def test_map_export(self, site):
        m = site.create_map("m")
        site.transact(lambda: (m.put("a", "int", 1), m.put("b", "string", "x")))
        spec, _, _ = syncmod.export_state(m)
        assert spec[0] == "map"
        assert {k for k, _ in spec[2]} == {"a", "b"}


class TestImport:
    def test_scalar_roundtrip(self, site, other):
        x = site.create_int("x", 3)
        site.transact(lambda: x.set(42))
        spec, _, _ = syncmod.export_state(x)
        y = other.create_int("x", 0)
        join_vt = other.clock.tick()
        syncmod.import_state(y, spec, join_vt)
        assert y.get() == 42

    def test_list_roundtrip_with_children(self, site, other):
        lst = site.create_list("l")
        site.transact(
            lambda: (
                lst.append("int", 1),
                lst.append("list", [("string", "s")]),
                lst.append("map", {"k": ("float", 2.5)}),
            )
        )
        spec, _, _ = syncmod.export_state(lst)
        target = other.create_list("l")
        syncmod.import_state(target, spec, other.clock.tick())
        assert value(target) == [1, ["s"], {"k": 2.5}]

    def test_tombstones_survive_roundtrip(self, site, other):
        lst = site.create_list("l")
        site.transact(lambda: [lst.append("int", i) for i in range(3)])
        site.transact(lambda: lst.remove(1))
        spec, _, _ = syncmod.export_state(lst)
        target = other.create_list("l")
        syncmod.import_state(target, spec, other.clock.tick())
        assert value(target) == [0, 2]

    def test_restore_after_abort(self, site, other):
        x = site.create_int("x", 3)
        spec, _, _ = syncmod.export_state(x)
        y = other.create_int("x", 7)
        other.transact(lambda: y.set(8))
        join_vt = other.clock.tick()
        syncmod.import_state(y, spec, join_vt)
        assert y.get() == 3
        syncmod.restore_state(y, join_vt)
        assert y.get() == 8

    def test_restore_without_stash_raises(self, site):
        x = site.create_int("x", 3)
        with pytest.raises(ProtocolError):
            syncmod.restore_state(x, site.clock.tick())

    def test_kind_mismatch_rejected(self, site, other):
        x = site.create_int("x", 3)
        spec, _, _ = syncmod.export_state(x)
        s = other.create_string("x", "")
        with pytest.raises(ProtocolError):
            syncmod.import_state(s, spec, other.clock.tick())

    def test_imported_children_registered_with_site(self, site, other):
        lst = site.create_list("l")
        site.transact(lambda: lst.append("int", 1))
        spec, _, _ = syncmod.export_state(lst)
        target = other.create_list("l")
        count_before = len(other.objects)
        syncmod.import_state(target, spec, other.clock.tick())
        assert len(other.objects) == count_before + 1  # the imported child

    def test_uncommitted_import_registers_applied_ops(self, site, other):
        from repro.vtime import VirtualTime

        x = site.create_int("x", 3)
        uncommitted_vt = VirtualTime(10, 9)
        x.history.insert(uncommitted_vt, 99, committed=False)
        spec, _, pending = syncmod.export_state(x)
        y = other.create_int("x", 0)
        syncmod.import_state(y, spec, other.clock.tick())
        assert y.get() == 99  # optimistic current
        assert y.committed_value() == 3
        # The applied-op log lets a forwarded ABORT purge the entry.
        assert uncommitted_vt in other.engine.applied
        other.engine._apply_abort_locally(uncommitted_vt)
        assert y.get() == 3


class TestFalsyChildren:
    """Regression: empty composites are falsy (len == 0); identity checks,
    not truthiness, must decide whether a map key holds a child.  Found by
    hypothesis through the sync roundtrip."""

    def test_empty_list_as_map_value_survives_join(self):
        session = Session.simulated(latency_ms=20)
        alice, bob = session.add_sites(2)
        board = alice.create_map("board")
        assoc = alice.create_association("board.assoc")
        alice.transact(lambda: assoc.create_relationship("board.rel"))
        session.settle()
        alice.join(assoc, "board.rel", board)
        session.settle()
        # A key whose value is an EMPTY list (falsy!).
        alice.transact(lambda: board.put("todo", "list", []))
        session.settle()
        assoc_b = bob.import_invitation(assoc.make_invitation(), "board.assoc")
        session.settle()
        b_board = bob.create_map("board")
        out = bob.join(assoc_b, "board.rel", b_board)
        session.settle()
        assert out.committed
        assert value(b_board) == {"todo": []}
        # And the late joiner can fill the empty list in place.
        bob.transact(lambda: b_board.child("todo").append("string", "item"))
        session.settle()
        assert value(board) == {"todo": ["item"]}

    def test_empty_map_checkpoint_roundtrip(self):
        from repro.persist import checkpoint_site, restore_site

        session = Session.simulated(latency_ms=10)
        site = session.add_site("app")
        m = site.create_map("m")
        site.transact(lambda: m.put("empty", "map", {}))
        session.settle()
        doc = checkpoint_site(site)
        fresh = Session.simulated(latency_ms=10).add_site("app")
        restored = restore_site(fresh, doc)
        assert value(restored["m"]) == {"empty": {}}
