"""Tests for association model objects (paper sections 2.1 / 2.6)."""

import pytest

from repro import Session, View


@pytest.fixture()
def site():
    return Session().add_site("app")


class TestAssociationValue:
    def test_create_relationship(self, site):
        assoc = site.create_association("a")
        site.transact(lambda: assoc.create_relationship("r1"))
        assert assoc.relationships() == ["r1"]
        assert assoc.members("r1") == []

    def test_record_join_and_leave(self, site):
        assoc = site.create_association("a")

        def body():
            assoc.create_relationship("r1")
            assoc.record_join("r1", "s0:x", 0)
            assoc.record_join("r1", "s1:x", 1)

        site.transact(body)
        assert assoc.members("r1") == [("s0:x", 0), ("s1:x", 1)]
        site.transact(lambda: assoc.record_leave("r1", "s0:x"))
        assert assoc.members("r1") == [("s1:x", 1)]

    def test_multiple_relationships(self, site):
        assoc = site.create_association("a")

        def body():
            assoc.create_relationship("accounts")
            assoc.create_relationship("documents")
            assoc.record_join("accounts", "s0:bal", 0)

        site.transact(body)
        assert assoc.relationships() == ["accounts", "documents"]
        assert assoc.members("documents") == []

    def test_abort_rolls_back_membership(self, site):
        assoc = site.create_association("a")
        site.transact(lambda: assoc.create_relationship("r"))

        def body():
            assoc.record_join("r", "s0:x", 0)
            raise RuntimeError("cancel")

        site.transact(body)
        assert assoc.members("r") == []

    def test_invitation_fields(self, site):
        assoc = site.create_association("a")
        inv = assoc.make_invitation(note="hello")
        assert inv.inviter_site == site.site_id
        assert inv.assoc_uid == assoc.uid
        assert inv.note == "hello"


class TestAssociationViews:
    def test_membership_changes_notify_views(self):
        """Section 2.6: membership changes are signaled exactly like value
        updates."""
        session = Session.simulated(latency_ms=20)
        alice, bob = session.add_sites(2)

        class MembershipView(View):
            def __init__(self):
                self.seen = []

            def update(self, changed, snapshot):
                self.seen.append(snapshot.read(changed[0]))

        a_obj = alice.create_int("x", 0)
        assoc = alice.create_association("a")
        alice.transact(lambda: assoc.create_relationship("r"))
        session.settle()
        alice.join(assoc, "r", a_obj)
        session.settle()
        view = MembershipView()
        assoc.attach(view, "optimistic")
        assoc_b = bob.import_invitation(assoc.make_invitation(), "a")
        session.settle()
        b_obj = bob.create_int("x", 0)
        bob.join(assoc_b, "r", b_obj)
        session.settle()
        # The view observed the membership grow to two members.
        final = dict(view.seen[-1])
        assert len(final["r"]) == 2
