"""Tests for message tracing and metric aggregation."""

import pytest

from repro import Session
from repro.bench.metrics import ConflictStats, DeviationTotals, LatencyStats
from repro.core.transaction import TransactionOutcome
from repro.sim.trace import MessageTrace
from repro import DInt


class TestMessageTrace:
    def _traced_pair(self):
        session = Session.simulated(latency_ms=20)
        trace = MessageTrace(session.network)
        alice, bob = session.add_sites(2)
        objs = session.replicate(DInt, "x", [alice, bob], initial=0)
        session.settle()
        trace.clear()  # drop setup traffic
        return session, trace, alice, bob, objs

    def test_records_sends(self):
        session, trace, alice, bob, objs = self._traced_pair()
        alice.transact(lambda: objs[0].set(1))
        session.settle()
        assert len(trace) >= 2
        types = trace.counts_by_type()
        assert "TxnPropagateMsg" in types
        assert "CommitMsg" in types

    def test_transaction_story(self):
        session, trace, alice, bob, objs = self._traced_pair()
        out = alice.transact(lambda: objs[0].set(1))
        session.settle()
        story = trace.transaction_story(out.vt)
        assert story
        assert all(entry.txn_vt == out.vt for entry in story)
        # Story is in send order: propagate precedes commit.
        assert story[0].msg_type == "TxnPropagateMsg"
        assert story[-1].msg_type == "CommitMsg"

    def test_filters(self):
        session, trace, alice, bob, objs = self._traced_pair()
        alice.transact(lambda: objs[0].set(1))
        bob.transact(lambda: objs[1].set(2))
        session.settle()
        from_alice = trace.filter(src=0)
        assert from_alice and all(e.src == 0 for e in from_alice)
        only_commits = trace.filter(msg_type="CommitMsg")
        assert only_commits and all(e.msg_type == "CommitMsg" for e in only_commits)

    def test_render(self):
        session, trace, alice, bob, objs = self._traced_pair()
        alice.transact(lambda: objs[0].set(1))
        session.settle()
        text = trace.render(limit=3)
        assert "->" in text and "ms" in text

    def test_uninstall_stops_recording(self):
        session, trace, alice, bob, objs = self._traced_pair()
        trace.uninstall()
        alice.transact(lambda: objs[0].set(1))
        session.settle()
        assert len(trace) == 0
        # ...and the protocol still works.
        assert objs[1].get() == 1

    def test_concurrent_traces_stack(self):
        """Two traces on one network record independently; uninstalling in
        any order leaves the survivor recording (the monkeypatch-stacking
        bug the bus-subscriber implementation fixed)."""
        session, first, alice, bob, objs = self._traced_pair()
        second = MessageTrace(session.network)
        alice.transact(lambda: objs[0].set(1))
        session.settle()
        assert len(first) > 0
        assert [e.msg_type for e in first.entries] == [e.msg_type for e in second.entries]

        # Uninstall the FIRST-installed trace first (the order the old
        # monkeypatch chain could not survive) — the second keeps working.
        first.uninstall()
        before = len(second)
        alice.transact(lambda: objs[0].set(2))
        session.settle()
        assert len(first.entries) and len(first) < len(second)
        assert len(second) > before
        second.uninstall()
        alice.transact(lambda: objs[0].set(3))
        session.settle()
        assert len(second) == len(second.entries)
        assert objs[1].get() == 3

    def test_uninstall_idempotent_and_bus_independent(self):
        session, trace, alice, bob, objs = self._traced_pair()
        trace.uninstall()
        trace.uninstall()  # double uninstall is a no-op
        # A trace must not disturb the bus's own recording lifecycle.
        bus = session.observe()
        alice.transact(lambda: objs[0].set(1))
        session.settle()
        assert len(trace) == 0
        assert bus.filter(kind="message_sent")


class TestLatencyStats:
    def _outcome(self, latency):
        out = TransactionOutcome(start_time_ms=0.0)
        out.commit_time_ms = latency
        out.committed = True
        return out

    def test_stats(self):
        outcomes = [self._outcome(v) for v in (10.0, 20.0, 30.0, 40.0)]
        stats = LatencyStats.from_outcomes(outcomes)
        assert stats.count == 4
        assert stats.mean == 25.0
        assert stats.minimum == 10.0 and stats.maximum == 40.0
        assert stats.p50 in (20.0, 30.0)

    def test_empty(self):
        assert LatencyStats.from_outcomes([]) is None
        assert LatencyStats.from_outcomes([TransactionOutcome()]) is None


class TestConflictStats:
    def test_rollback_rate(self):
        outs = []
        for attempts, committed in ((1, True), (3, True), (2, True)):
            o = TransactionOutcome()
            o.attempts = attempts
            o.committed = committed
            outs.append(o)
        stats = ConflictStats.from_outcomes(outs)
        assert stats.transactions == 3
        assert stats.attempts == 6
        assert stats.conflict_retries == 3
        assert stats.rollback_rate == 0.5

    def test_zero_division_guard(self):
        assert ConflictStats.from_outcomes([]).rollback_rate == 0.0


class TestDeviationTotals:
    def test_from_session(self):
        from repro import View

        class Null(View):
            def update(self, changed, snapshot):
                pass

        session = Session.simulated(latency_ms=20)
        alice, bob = session.add_sites(2)
        objs = session.replicate(DInt, "x", [alice, bob], initial=0)
        session.settle()
        objs[1].attach(Null(), "optimistic")
        alice.transact(lambda: objs[0].set(1))
        session.settle()
        totals = DeviationTotals.from_session(session)
        assert totals.notifications >= 2  # bootstrap + update
        rates = totals.rate_per_notification()
        assert set(rates) == {"lost_updates", "update_inconsistencies", "read_inconsistencies"}
