"""Tests for authorization monitors."""

import pytest

from repro import Session
from repro.core.auth import (
    AllowListMonitor,
    AuthorizationMonitor,
    PredicateMonitor,
    ReadOnlyMonitor,
)
from repro.errors import NotAuthorized


@pytest.fixture()
def site():
    return Session().add_site("app", principal="alice")


class TestMonitors:
    def test_default_allows_everything(self, site):
        x = site.create_int("x")
        x.set_authorization(AuthorizationMonitor())
        outcome = site.transact(lambda: x.set(1))
        assert outcome.committed

    def test_allow_list_denies_outsiders(self, site):
        x = site.create_int("x")
        x.set_authorization(AllowListMonitor(readers={"bob"}))
        outcome = site.transact(lambda: x.get())
        assert outcome.aborted_no_retry
        assert "NotAuthorized" in outcome.abort_reason

    def test_allow_list_writers_default_to_readers(self):
        monitor = AllowListMonitor(readers={"alice"})
        assert monitor.can_write("alice", None)
        assert not monitor.can_write("bob", None)

    def test_allow_list_separate_writers(self, site):
        x = site.create_int("x")
        x.set_authorization(AllowListMonitor(readers={"alice"}, writers={"bob"}))
        assert site.transact(lambda: x.get()).committed
        assert site.transact(lambda: x.set(1)).aborted_no_retry

    def test_read_only_monitor(self, site):
        x = site.create_int("x")
        x.set_authorization(ReadOnlyMonitor(owner="bob"))
        assert site.transact(lambda: x.get()).committed
        assert site.transact(lambda: x.set(1)).aborted_no_retry

    def test_predicate_monitor(self, site):
        x = site.create_int("x", 5)
        x.set_authorization(
            PredicateMonitor(write=lambda principal, obj: obj.get() < 10)
        )
        assert site.transact(lambda: x.set(9)).committed

    def test_write_denied_rolls_back_partial_transaction(self, site):
        a = site.create_int("a")
        b = site.create_int("b")
        b.set_authorization(AllowListMonitor(readers=set()))

        def body():
            a.set(1)  # allowed
            b.set(2)  # denied -> whole transaction aborts

        outcome = site.transact(body)
        assert outcome.aborted_no_retry
        assert a.get() == 0 and b.get() == 0

    def test_clearing_monitor(self, site):
        x = site.create_int("x")
        x.set_authorization(AllowListMonitor(readers=set()))
        assert site.transact(lambda: x.set(1)).aborted_no_retry
        x.set_authorization(None)
        assert site.transact(lambda: x.set(1)).committed

    def test_monitor_on_composite_gates_children_ops(self, site):
        lst = site.create_list("l")
        lst.set_authorization(AllowListMonitor(readers=set()))
        outcome = site.transact(lambda: lst.append("int", 1))
        assert outcome.aborted_no_retry


class TestJoinGates:
    """can_join decisions, consulted by the join protocol before revealing
    replica relationships."""

    def test_base_monitor_allows_join(self):
        assert AuthorizationMonitor().can_join("anyone", None)

    def test_allow_list_joiners_default_to_writers(self):
        monitor = AllowListMonitor(readers={"alice", "bob"}, writers={"alice"})
        assert monitor.can_join("alice", None)
        assert not monitor.can_join("bob", None)

    def test_allow_list_separate_joiners(self):
        monitor = AllowListMonitor(readers={"alice"}, joiners={"carol"})
        assert monitor.can_join("carol", None)
        assert not monitor.can_join("alice", None)

    def test_read_only_join_restricted_to_owner(self):
        monitor = ReadOnlyMonitor(owner="alice")
        assert monitor.can_join("alice", None)
        assert not monitor.can_join("bob", None)

    def test_predicate_join_delegates(self):
        monitor = PredicateMonitor(join=lambda principal, obj: principal == "x")
        assert monitor.can_join("x", None)
        assert not monitor.can_join("y", None)

    def test_predicate_defaults_allow(self):
        monitor = PredicateMonitor()
        assert monitor.can_read("p", None)
        assert monitor.can_write("p", None)
        assert monitor.can_join("p", None)
