"""Tests for composite model objects (lists and maps) on a single site."""

import pytest

from repro import Session
from repro.errors import ReproError


@pytest.fixture()
def site():
    return Session().add_site("solo")


class TestDList:
    def test_empty(self, site):
        lst = site.create_list("l")
        site.transact(lambda: None)
        assert lst.value_at(lst.current_value_vt()) == []

    def test_append_scalars(self, site):
        lst = site.create_list("l")

        def body():
            lst.append("int", 1)
            lst.append("string", "two")
            lst.append("float", 3.0)

        site.transact(body)
        assert lst.value_at(lst.current_value_vt()) == [1, "two", 3.0]

    def test_insert_positions(self, site):
        lst = site.create_list("l")
        site.transact(lambda: (lst.append("int", 1), lst.append("int", 3)))
        site.transact(lambda: lst.insert(1, "int", 2))
        assert lst.value_at(lst.current_value_vt()) == [1, 2, 3]

    def test_insert_at_head(self, site):
        lst = site.create_list("l")
        site.transact(lambda: lst.append("int", 2))
        site.transact(lambda: lst.insert(0, "int", 1))
        assert lst.value_at(lst.current_value_vt()) == [1, 2]

    def test_insert_out_of_range(self, site):
        lst = site.create_list("l")

        def body():
            lst.insert(5, "int", 1)

        outcome = site.transact(body)
        assert outcome.aborted_no_retry  # IndexError aborts without retry

    def test_remove(self, site):
        lst = site.create_list("l")
        site.transact(lambda: [lst.append("int", i) for i in range(3)])
        site.transact(lambda: lst.remove(1))
        assert lst.value_at(lst.current_value_vt()) == [0, 2]

    def test_removed_slot_is_tombstoned_not_deleted(self, site):
        lst = site.create_list("l")
        site.transact(lambda: lst.append("int", 7))
        before_vt = lst.current_value_vt()
        site.transact(lambda: lst.remove(0))
        # The old snapshot still sees the element (MVCC).
        assert lst.value_at(before_vt) == [7]
        assert lst.value_at(lst.current_value_vt()) == []

    def test_child_handles_are_model_objects(self, site):
        lst = site.create_list("l")
        created = []
        site.transact(lambda: created.append(lst.append("int", 5)))
        child = created[0]
        site.transact(lambda: child.set(6))
        assert lst.value_at(lst.current_value_vt()) == [6]

    def test_child_at_and_index_of(self, site):
        lst = site.create_list("l")
        site.transact(lambda: [lst.append("int", i * 10) for i in range(3)])

        def body():
            child = lst.child_at(2)
            assert lst.index_of(child) == 2
            assert child.get() == 20

        site.transact(body)

    def test_len_inside_txn(self, site):
        lst = site.create_list("l")
        lengths = []
        site.transact(lambda: (lst.append("int", 1), lengths.append(len(lst))))
        assert lengths == [1]

    def test_nested_lists(self, site):
        lst = site.create_list("l")
        inner_holder = []

        def body():
            inner = lst.append("list", [("int", 1), ("int", 2)])
            inner_holder.append(inner)

        site.transact(body)
        assert lst.value_at(lst.current_value_vt()) == [[1, 2]]
        inner = inner_holder[0]
        site.transact(lambda: inner.append("int", 3))
        assert lst.value_at(lst.current_value_vt()) == [[1, 2, 3]]

    def test_children_list(self, site):
        lst = site.create_list("l")
        site.transact(lambda: [lst.append("int", i) for i in range(2)])

        def body():
            kids = lst.children()
            assert [k.get() for k in kids] == [0, 1]

        site.transact(body)

    def test_abort_rolls_back_insert(self, site):
        lst = site.create_list("l")

        def body():
            lst.append("int", 1)
            raise RuntimeError("user abort")

        outcome = site.transact(body)
        assert outcome.aborted_no_retry
        assert lst.value_at(lst.current_value_vt()) == []

    def test_path_from_root(self, site):
        lst = site.create_list("l")
        holder = []
        site.transact(lambda: holder.append(lst.append("list", [("int", 9)])))
        inner = holder[0]

        def body():
            grand = inner.child_at(0)
            path = grand.path_from_root()
            assert len(path) == 2
            assert path[0].embed_vt == inner.embed_vt

        site.transact(body)


class TestDMap:
    def test_put_and_read(self, site):
        m = site.create_map("m")
        site.transact(lambda: m.put("a", "int", 1))
        assert m.value_at(m.current_value_vt()) == {"a": 1}

    def test_put_replaces(self, site):
        m = site.create_map("m")
        site.transact(lambda: m.put("a", "int", 1))
        site.transact(lambda: m.put("a", "int", 2))
        assert m.value_at(m.current_value_vt()) == {"a": 2}

    def test_delete(self, site):
        m = site.create_map("m")
        site.transact(lambda: (m.put("a", "int", 1), m.put("b", "int", 2)))
        site.transact(lambda: m.delete("a"))
        assert m.value_at(m.current_value_vt()) == {"b": 2}

    def test_delete_is_mvcc(self, site):
        m = site.create_map("m")
        site.transact(lambda: m.put("a", "int", 1))
        before = m.current_value_vt()
        site.transact(lambda: m.delete("a"))
        assert m.value_at(before) == {"a": 1}

    def test_keys_has_child(self, site):
        m = site.create_map("m")
        site.transact(lambda: (m.put("x", "int", 1), m.put("y", "int", 2)))

        def body():
            assert m.keys() == ["x", "y"]
            assert m.has("x") and not m.has("z")
            assert m.child("y").get() == 2
            with pytest.raises(KeyError):
                m.child("z")

        site.transact(body)

    def test_nested_map_in_list(self, site):
        lst = site.create_list("l")
        holder = []
        site.transact(
            lambda: holder.append(lst.append("map", {"k": ("string", "v")}))
        )
        assert lst.value_at(lst.current_value_vt()) == [{"k": "v"}]
        inner = holder[0]
        site.transact(lambda: inner.put("k2", "int", 7))
        assert lst.value_at(lst.current_value_vt()) == [{"k": "v", "k2": 7}]

    def test_abort_rolls_back_put(self, site):
        m = site.create_map("m")

        def body():
            m.put("a", "int", 1)
            raise RuntimeError("no")

        site.transact(body)
        assert m.value_at(m.current_value_vt()) == {}

    def test_writes_require_txn(self, site):
        m = site.create_map("m")
        with pytest.raises(ReproError):
            m.put("a", "int", 1)
