"""Property-based equivalence: indexed hot paths vs naive seed references.

The bisect-backed ``ValueHistory`` and ``IntervalSet`` (and the compacting
``Scheduler``) must be *observably identical* to the seed's naive linear
implementations, which are preserved verbatim in
:mod:`repro.bench.reference`.  Hypothesis drives both sides with the same
random operation sequences — including GC with pinned snapshot floors and
purge-on-abort interleavings — and asserts every result, every exception,
and the full post-state match.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.reference import NaiveIntervalSet, NaiveScheduler, NaiveValueHistory
from repro.core.history import ValueHistory
from repro.errors import ProtocolError
from repro.sim.scheduler import Scheduler
from repro.vtime import VirtualTime
from repro.vtime.intervals import IntervalSet


def vt(counter, site=0):
    return VirtualTime(counter, site)


vts = st.builds(VirtualTime, st.integers(0, 40), st.integers(0, 3))


def _apply_history_op(history, op):
    """Run one op; returns (tag, result) with exceptions folded in."""
    kind = op[0]
    try:
        if kind == "insert":
            _, v, committed = op
            entry = history.insert(v, f"val@{v}", committed=committed)
            return ("ok", (entry.vt, entry.value, entry.committed))
        if kind == "commit":
            return ("ok", history.commit(op[1]))
        if kind == "purge":
            return ("ok", history.purge(op[1]))
        if kind == "gc":
            return ("ok", history.gc(floor=op[1]))
        if kind == "set_value_at":
            return ("ok", history.set_value_at(op[1], f"over@{op[1]}"))
        if kind == "read_at":
            e = history.read_at(op[1])
            return ("ok", (e.vt, e.value, e.committed))
        if kind == "committed_read_at":
            e = history.committed_read_at(op[1])
            return ("ok", (e.vt, e.value, e.committed))
        if kind == "entry_at":
            e = history.entry_at(op[1])
            return ("ok", None if e is None else (e.vt, e.value, e.committed))
        if kind == "in_interval":
            _, lo, hi, committed_only = op
            found = history.entries_in_open_interval(lo, hi, committed_only=committed_only)
            return ("ok", [(e.vt, e.value, e.committed) for e in found])
        if kind == "has_uncommitted":
            _, lo, hi, _ = op
            return ("ok", history.has_uncommitted_in_open_interval(lo, hi))
        raise AssertionError(f"unknown op {kind}")
    except ProtocolError as exc:
        return ("ProtocolError", str(exc))


history_ops = st.one_of(
    st.tuples(st.just("insert"), vts, st.booleans()),
    st.tuples(st.just("commit"), vts),
    st.tuples(st.just("purge"), vts),
    st.tuples(st.just("gc"), st.one_of(st.none(), vts)),
    st.tuples(st.just("set_value_at"), vts),
    st.tuples(st.just("read_at"), vts),
    st.tuples(st.just("committed_read_at"), vts),
    st.tuples(st.just("entry_at"), vts),
    st.tuples(st.just("in_interval"), vts, vts, st.booleans()),
    st.tuples(st.just("has_uncommitted"), vts, vts, st.booleans()),
)


def _snapshot(history):
    return [(e.vt, e.value, e.committed) for e in history]


@settings(max_examples=300, deadline=None)
@given(st.lists(history_ops, max_size=60))
def test_value_history_equivalence(ops):
    naive = NaiveValueHistory("init")
    indexed = ValueHistory("init")
    for op in ops:
        # in_interval needs lo <= hi to be a sensible probe either way; both
        # implementations must agree even on inverted/empty windows, so no
        # filtering — feed the ops through verbatim.
        assert _apply_history_op(naive, op) == _apply_history_op(indexed, op)
        assert _snapshot(naive) == _snapshot(indexed)
        assert len(naive) == len(indexed)
        assert naive.current().vt == indexed.current().vt
        try:
            expected = (True, naive.committed_current().vt)
        except ProtocolError:
            expected = (False, None)
        try:
            got = (True, indexed.committed_current().vt)
        except ProtocolError:
            got = (False, None)
        assert expected == got


def _interval_args(raw):
    lo, hi, owner_counter, owner_site = raw
    if hi < lo:
        lo, hi = hi, lo
    return vt(lo), vt(hi), VirtualTime(owner_counter, owner_site)


def _apply_interval_op(iset, op):
    kind = op[0]
    if kind == "reserve":
        lo, hi, owner = _interval_args(op[1])
        interval = iset.reserve(lo, hi, owner)
        return (interval.lo, interval.hi, interval.owner)
    if kind == "release":
        return iset.release_owner(VirtualTime(op[1], op[2]))
    if kind == "prune":
        return iset.prune_before(op[1])
    if kind == "blocking":
        found = iset.blocking_reservation(op[1], exclude_owner=op[2])
        return None if found is None else (found.lo, found.hi, found.owner)
    if kind == "covering":
        return [(i.lo, i.hi, i.owner) for i in iset.covering_intervals(op[1])]
    if kind == "owners":
        return iset.owners()
    raise AssertionError(f"unknown op {kind}")


owner_raw = st.tuples(st.integers(0, 40), st.integers(0, 3), st.integers(0, 40), st.integers(0, 3))

interval_ops = st.one_of(
    st.tuples(st.just("reserve"), owner_raw),
    st.tuples(st.just("release"), st.integers(0, 40), st.integers(0, 3)),
    st.tuples(st.just("prune"), vts),
    st.tuples(st.just("blocking"), vts, st.one_of(st.none(), vts)),
    st.tuples(st.just("covering"), vts),
    st.tuples(st.just("owners"),),
)


@settings(max_examples=300, deadline=None)
@given(st.lists(interval_ops, max_size=80))
def test_interval_set_equivalence(ops):
    naive = NaiveIntervalSet()
    indexed = IntervalSet()
    for op in ops:
        assert _apply_interval_op(naive, op) == _apply_interval_op(indexed, op)
        assert len(naive) == len(indexed)
        # Iteration order (insertion order) is part of the contract.
        assert list(naive) == list(indexed)


@settings(max_examples=150, deadline=None)
@given(st.lists(interval_ops, min_size=20, max_size=120))
def test_interval_set_equivalence_survives_compaction(ops):
    """Force the tombstone-compaction path by lowering its threshold."""
    import repro.vtime.intervals as intervals_mod

    naive = NaiveIntervalSet()
    indexed = IntervalSet()
    original = intervals_mod._COMPACT_MIN_DEAD
    intervals_mod._COMPACT_MIN_DEAD = 1
    try:
        for op in ops:
            assert _apply_interval_op(naive, op) == _apply_interval_op(indexed, op)
            assert list(naive) == list(indexed)
    finally:
        intervals_mod._COMPACT_MIN_DEAD = original


# ---------------------------------------------------------------------------
# Scheduler: identical execution traces under churn
# ---------------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(st.floats(0, 100, allow_nan=False), st.booleans()),
        max_size=60,
    )
)
def test_scheduler_trace_equivalence(specs):
    """Same schedule/cancel sequence → same firing order, times, pending()."""

    def drive(sched_cls):
        sched = sched_cls()
        fired = []
        pendings = []
        events = []
        for i, (delay, cancel) in enumerate(specs):
            event = sched.call_later(delay, lambda i=i: fired.append((i, sched.now)))
            events.append(event)
            if cancel:
                event.cancel()
            pendings.append(sched.pending())
        sched.run_until_quiescent()
        return fired, pendings, sched.now, sched.events_processed

    assert drive(NaiveScheduler) == drive(Scheduler)
