"""Tests for scalar model objects on a single site (local-primary fast path)."""

import pytest

from repro import Session
from repro.errors import ReproError
from repro.vtime import VT_ZERO


@pytest.fixture()
def site():
    return Session().add_site("solo")


class TestCreation:
    def test_int_defaults(self, site):
        x = site.create_int("x")
        assert x.get() == 0
        assert x.uid == "s0:x"

    def test_typed_initials(self, site):
        assert site.create_int("i", 7).get() == 7
        assert site.create_float("f", 2.5).get() == 2.5
        assert site.create_string("s", "hi").get() == "hi"

    def test_duplicate_name_rejected(self, site):
        site.create_int("x")
        with pytest.raises(ReproError):
            site.create_int("x")

    def test_type_validation(self, site):
        with pytest.raises(TypeError):
            site.create_int("x", "not an int")
        with pytest.raises(TypeError):
            site.create_string("s", 5)

    def test_bool_is_not_int(self, site):
        with pytest.raises(TypeError):
            site.create_int("b", True)

    def test_float_accepts_int(self, site):
        assert site.create_float("f", 3).get() == 3.0


class TestReadsAndWrites:
    def test_write_requires_transaction(self, site):
        x = site.create_int("x")
        with pytest.raises(ReproError):
            x.set(5)

    def test_read_outside_transaction_is_allowed(self, site):
        x = site.create_int("x", 9)
        assert x.get() == 9

    def test_transactional_set(self, site):
        x = site.create_int("x")
        outcome = site.transact(lambda: x.set(5))
        assert outcome.committed
        assert x.get() == 5
        assert x.committed_value() == 5

    def test_read_own_write_within_txn(self, site):
        x = site.create_int("x", 1)
        seen = []

        def body():
            x.set(10)
            seen.append(x.get())

        site.transact(body)
        assert seen == [10]

    def test_multiple_writes_same_txn_last_wins(self, site):
        x = site.create_int("x")
        site.transact(lambda: (x.set(1), x.set(2), x.set(3)))
        assert x.get() == 3
        # One history entry at the transaction's VT; GC may retain a short
        # committed tail bounded by the clock stability bound.
        assert len(x.history) <= 2
        assert x.history.current().value == 3

    def test_add_helper(self, site):
        x = site.create_int("x", 10)
        site.transact(lambda: x.add(-3))
        assert x.get() == 7

    def test_float_add(self, site):
        f = site.create_float("f", 1.0)
        site.transact(lambda: f.add(0.5))
        assert f.get() == 1.5

    def test_string_append(self, site):
        s = site.create_string("s", "ab")
        site.transact(lambda: s.append("cd"))
        assert s.get() == "abcd"

    def test_set_validates_type_inside_txn(self, site):
        x = site.create_int("x")
        outcome = site.transact(lambda: x.set("bad"))
        # The TypeError aborts the transaction without retry.
        assert outcome.aborted_no_retry
        assert x.get() == 0

    def test_multi_object_atomicity(self, site):
        a = site.create_int("a", 100)
        b = site.create_int("b", 0)

        def transfer():
            a.set(a.get() - 30)
            b.set(b.get() + 30)

        site.transact(transfer)
        assert (a.get(), b.get()) == (70, 30)


class TestSnapshots:
    def test_value_at_past_vt_before_gc(self, site):
        x = site.create_int("x", 0)
        site.transact(lambda: x.set(1))
        vt1 = x.history.current().vt
        # Within the retained window, past versions are readable; once a
        # later transaction commits, GC discards versions no snapshot needs
        # (paper section 3: "committal makes old values no longer needed").
        assert x.value_at(vt1) == 1
        site.transact(lambda: x.set(2))
        site.transact(lambda: x.set(3))
        assert x.value_at(x.current_value_vt()) == 3
        # Versions below the stability bound were collected.
        assert len(x.history) <= 2

    def test_current_value_vt_advances(self, site):
        x = site.create_int("x")
        before = x.current_value_vt()
        site.transact(lambda: x.set(1))
        assert x.current_value_vt() > before


class TestOutcome:
    def test_immediate_commit_on_local_primary(self, site):
        x = site.create_int("x")
        outcome = site.transact(lambda: x.set(1))
        assert outcome.committed
        assert outcome.commit_latency_ms == 0.0
        assert outcome.attempts == 1

    def test_on_commit_callback_fires(self, site):
        x = site.create_int("x")
        fired = []
        outcome = site.transact(lambda: x.set(1))
        outcome.on_commit(lambda o: fired.append(o.vt))
        assert fired == [outcome.vt]
