"""Tests for the ORESTE-style baseline, reproducing the paper's section 6
analysis of its strengths and weaknesses."""

import pytest

from repro.baselines.oreste import Operation, OresteSystem, default_commutes
from repro.sim.network import FixedLatency
from repro.vtime import VirtualTime
from repro import DInt


def vt(counter, site=0):
    return VirtualTime(counter, site)


def op(counter, site, obj="obj", op_type="set", value=0):
    return Operation(
        vt=vt(counter, site), object_id=obj, op_type=op_type, value=value,
        probe_index=0, clock=counter,
    )


class TestCommutativity:
    def test_different_objects_commute(self):
        assert default_commutes(op(1, 0, obj="a"), op(2, 1, obj="b"))

    def test_same_attribute_masks(self):
        assert not default_commutes(
            op(1, 0, op_type="set_color"), op(2, 1, op_type="set_color")
        )

    def test_paper_example_color_vs_move_commute(self):
        # "a transaction that changes an object's color can reasonably be
        # said to commute with a transaction that moves an object".
        assert default_commutes(
            op(1, 0, op_type="set_color"), op(2, 1, op_type="move")
        )


class TestConvergence:
    def test_instant_local_echo(self):
        system = OresteSystem(n_sites=3)
        probe = system.issue(1, "shape", "set_color", "red")
        assert probe.local_echo_latency() == 0.0

    def test_final_states_converge(self):
        system = OresteSystem(n_sites=3, latency_ms=40.0)
        system.issue(0, "shape", "set_color", "blue")
        system.issue(1, "shape", "move", "B")
        system.issue(2, "other", "set_color", "green")
        system.settle()
        states = [system.state_at(s) for s in range(3)]
        assert states[0] == states[1] == states[2]
        assert states[0]["shape"] == {"set_color": "blue", "move": "B"}

    def test_masking_same_attribute_lww(self):
        system = OresteSystem(n_sites=2, latency_ms=40.0)
        system.issue(0, "obj", "set", 1)
        system.issue(1, "obj", "set", 2)
        system.settle()
        assert system.value_at(0) == system.value_at(1)

    def test_undo_redo_on_noncommuting_straggler(self):
        system = OresteSystem(n_sites=3, latency_ms=10.0)
        system.network.set_link_latency(1, 2, FixedLatency(500.0))
        system.issue(1, "obj", "set", "early")  # slow to site 2
        system.run_for(50)
        system.issue(0, "obj", "set", "late")  # fast everywhere
        system.settle()
        # Site 2 got "late" first, then the non-commuting "early" straggler:
        # undo/redo reorders, and the masking write wins everywhere.
        assert system.undo_redo_events[2] >= 1
        assert all(system.value_at(s) == "late" for s in range(3))


class TestPaperSection6Criticism:
    def test_nonquiescent_intermediate_states_diverge(self):
        """The paper's exact example: start with a red object at A; apply
        'paint blue' and 'move to B' concurrently.  Final states agree, but
        one site passes through (blue@A) while another passes through
        (red@B) — correctness holds only at quiescence."""
        system = OresteSystem(n_sites=2, latency_ms=60.0)
        system.issue(0, "shape", "set_color", "red")
        system.issue(0, "shape", "move", "A")
        system.settle()

        # Concurrent, commuting operations from the two sites.
        system.issue(0, "shape", "set_color", "blue")
        system.issue(1, "shape", "move", "B")
        system.settle()

        final0, final1 = system.state_at(0)["shape"], system.state_at(1)["shape"]
        assert final0 == final1 == {"set_color": "blue", "move": "A"} or (
            final0 == final1 == {"set_color": "blue", "move": "B"}
        )
        transitions = system.transition_sets("shape")
        blue_at_A = frozenset({("set_color", "blue"), ("move", "A")})
        red_at_B = frozenset({("set_color", "red"), ("move", "B")})
        # Site 0 observed the blue object still at A; site 1 observed the
        # red object already at B: different observable histories.
        assert blue_at_A in transitions[0]
        assert red_at_B in transitions[1]
        assert red_at_B not in transitions[0]
        assert blue_at_A not in transitions[1]

    def test_no_multi_object_transactions(self):
        """ORESTE operations target one object; a two-object 'transfer' is
        two independent operations, and remote sites can observe the
        half-applied intermediate state — unlike DECAF transactions."""
        system = OresteSystem(n_sites=2, latency_ms=50.0)
        system.issue(0, "acct_a", "set", 100)
        system.issue(0, "acct_b", "set", 0)
        system.settle()
        # "Transfer": two ops; make the second's delivery lag the first's.
        system.network.set_link_latency(0, 1, FixedLatency(50.0))
        system.issue(0, "acct_a", "set", 70)
        system.network.set_link_latency(0, 1, FixedLatency(300.0))
        system.issue(0, "acct_b", "set", 30)
        system.run_for(100)
        # Site 1 currently sees money destroyed (70 + 0): no atomicity.
        assert system.state_at(1)["acct_a"]["set"] == 70
        assert system.state_at(1)["acct_b"]["set"] == 0
        system.settle()
        assert system.state_at(1)["acct_b"]["set"] == 30

    def test_decaf_transaction_never_shows_half_state(self):
        """Contrast: the same transfer as one DECAF transaction is atomic —
        no observer snapshot ever shows the half-applied state."""
        from repro import Session, View

        session = Session.simulated(latency_ms=50.0)
        alice, bob = session.add_sites(2)
        a1, b1 = session.replicate(DInt, "acct_a", [alice, bob], initial=100)
        a2, b2 = session.replicate(DInt, "acct_b", [alice, bob], initial=0)
        session.settle()

        class PairView(View):
            def __init__(self):
                self.seen = []

            def update(self, changed, snapshot):
                self.seen.append((snapshot.read(b1), snapshot.read(b2)))

        view = PairView()
        bob.views.attach(view, [b1, b2], "optimistic")

        def transfer():
            a1.set(a1.get() - 30)
            a2.set(a2.get() + 30)

        alice.transact(transfer)
        session.settle()
        assert all(total == 100 for total in (a + b for a, b in view.seen))
        assert view.seen[-1] == (70, 30)
