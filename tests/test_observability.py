"""Tests for the protocol observability layer (repro.obs).

Covers the event bus contract (zero emissions when idle, deterministic
seq/time stamping, subscriber fan-out), the metrics registry (registry-
backed counters staying compatible with attribute access, fixed-bucket
histogram determinism), span reconstruction from event streams, and the
end-to-end determinism guarantee: identical runs record byte-identical
timelines and metrics.
"""

import pytest

from repro import Session
from repro.obs import (
    COUNT_BUCKETS,
    EVENT_KINDS,
    EventBus,
    Histogram,
    LATENCY_BUCKETS_MS,
    MetricsRegistry,
    ProtocolEvent,
    build_spans,
    counter_property,
    event_to_dict,
    span_summary,
    to_jsonl,
)
from repro.vtime import VirtualTime
from repro import DInt


class TestEventBus:
    def test_idle_bus_emits_nothing(self):
        bus = EventBus()
        assert not bus.active
        assert bus.emit("committed", site=0, time_ms=1.0) is None
        assert len(bus) == 0 and bus._seq == 0

    def test_enable_records_and_stamps_seq(self):
        bus = EventBus()
        bus.enable()
        assert bus.active and bus.recording
        e0 = bus.emit("txn_submitted", site=0, time_ms=5.0, txn_vt=VirtualTime(1, 0))
        e1 = bus.emit("committed", site=1, time_ms=5.0)
        assert (e0.seq, e1.seq) == (0, 1)  # same time, deterministic order
        assert bus.events == [e0, e1]
        bus.disable()
        assert not bus.active
        assert bus.emit("aborted", site=0, time_ms=6.0) is None
        assert len(bus) == 2  # recorded events survive disable

    def test_subscribers_activate_without_recording(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        assert bus.active and not bus.recording
        bus.emit("message_sent", site=0, time_ms=0.0, dst=1)
        assert len(seen) == 1 and len(bus) == 0
        bus.unsubscribe(seen.append)
        assert not bus.active
        bus.unsubscribe(seen.append)  # idempotent

    def test_data_payload_may_carry_kind_key(self):
        bus = EventBus()
        bus.enable()
        event = bus.emit("view_notified", site=0, time_ms=1.0, kind="update", mode="optimistic")
        assert event.kind == "view_notified"
        assert event.data["kind"] == "update"

    def test_filter_and_counts(self):
        bus = EventBus()
        bus.enable()
        vt = VirtualTime(3, 1)
        bus.emit("committed", site=0, time_ms=1.0, txn_vt=vt)
        bus.emit("committed", site=1, time_ms=2.0, txn_vt=vt)
        bus.emit("aborted", site=0, time_ms=3.0)
        assert len(bus.filter(kind="committed")) == 2
        assert len(bus.filter(site=0)) == 2
        assert len(bus.filter(kind="committed", site=1, txn_vt=vt)) == 1
        assert bus.counts_by_kind() == {"committed": 2, "aborted": 1}

    def test_event_to_dict_is_json_safe_and_skips_payloads(self):
        event = ProtocolEvent(
            seq=0,
            time_ms=1.5,
            site=2,
            kind="message_sent",
            txn_vt=VirtualTime(4, 1),
            data={"dst": 0, "payload": object(), "vts": [VirtualTime(1, 0)]},
        )
        d = event_to_dict(event)
        assert "payload" not in d["data"]
        assert d["txn_vt"] == str(VirtualTime(4, 1))
        assert d["data"]["vts"] == [str(VirtualTime(1, 0))]
        import json

        json.dumps(d)  # must be serializable as-is


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper(self):
        h = Histogram(bounds=(10.0, 20.0))
        for v in (0.0, 10.0, 10.1, 20.0, 21.0):
            h.observe(v)
        # (−inf,10]=2, (10,20]=2, overflow=1
        assert h.counts == [2, 2, 1]
        assert h.total == 5
        assert h.min == 0.0 and h.max == 21.0

    def test_boundary_values_land_deterministically_in_one_bucket(self):
        # A value exactly on a bucket edge must always land in the bucket
        # whose *inclusive upper* edge it is — for every edge of both
        # standard bucket layouts, and identically on repeat observation.
        for bounds in (LATENCY_BUCKETS_MS, COUNT_BUCKETS):
            for index, edge in enumerate(bounds):
                h = Histogram(bounds=bounds)
                h.observe(float(edge))
                h.observe(float(edge))
                expected = [0] * (len(bounds) + 1)
                expected[index] = 2
                assert h.counts == expected, (bounds, edge)

    def test_just_past_an_edge_lands_in_the_next_bucket(self):
        h = Histogram(bounds=(10.0, 20.0))
        h.observe(10.0)  # inclusive upper edge of bucket 0
        h.observe(10.000001)  # strictly above: bucket 1
        h.observe(20.0)
        h.observe(20.000001)  # strictly above the last bound: overflow
        assert h.counts == [1, 2, 1]

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(5.0, 5.0))
        with pytest.raises(ValueError):
            Histogram(bounds=(10.0, 5.0))

    def test_determinism_across_observation_orders_with_same_multiset(self):
        a, b = Histogram(LATENCY_BUCKETS_MS), Histogram(LATENCY_BUCKETS_MS)
        values = [3.0, 7.5, 120.0, 4999.0, 12000.0, 25.0]
        for v in values:
            a.observe(v)
        for v in reversed(values):
            b.observe(v)
        assert a.counts == b.counts and a.total == b.total and a.sum == b.sum

    def test_to_dict_round(self):
        h = Histogram(COUNT_BUCKETS)
        h.observe(1.0)
        h.observe(3.0)
        d = h.to_dict()
        assert d["total"] == 2 and d["mean"] == 2.0
        assert sum(d["counts"]) == 2


class TestMetricsRegistry:
    def test_counters_and_gauges(self):
        m = MetricsRegistry(site=3)
        assert m.value("txn.commits") == 0
        m.inc("txn.commits")
        m.inc("txn.commits", 2)
        m.gauge("queue.depth", 7.0)
        snap = m.snapshot()
        assert snap["site"] == 3
        assert snap["counters"] == {"txn.commits": 3}
        assert snap["gauges"] == {"queue.depth": 7.0}

    def test_histogram_declared_once(self):
        m = MetricsRegistry()
        h1 = m.histogram("lat", LATENCY_BUCKETS_MS)
        h2 = m.histogram("lat")
        assert h1 is h2
        m.observe("lat", 12.0)
        assert m.histograms["lat"].total == 1

    def test_counter_property_proxies_registry(self):
        class FakeSite:
            def __init__(self):
                self.metrics = MetricsRegistry(0)

        class Engine:
            commits = counter_property("txn.commits")

            def __init__(self, site):
                self.site = site

        site = FakeSite()
        engine = Engine(site)
        assert engine.commits == 0
        engine.commits += 1
        engine.commits += 1
        assert site.metrics.value("txn.commits") == 2
        engine.commits = 10
        assert engine.commits == 10

    def test_snapshot_keys_sorted(self):
        m = MetricsRegistry()
        m.inc("b")
        m.inc("a")
        assert list(m.snapshot()["counters"]) == ["a", "b"]


class TestSpans:
    def _events(self):
        vt = VirtualTime(5, 0)
        mk = lambda seq, t, event_kind, **data: ProtocolEvent(
            seq=seq, time_ms=t, site=0, kind=event_kind, txn_vt=vt, data=data
        )
        return vt, [
            mk(0, 10.0, "txn_submitted", attempt=1),
            mk(1, 10.0, "guess_made", guess="RL", obj="x@0"),
            mk(2, 10.0, "guess_made", guess="NC", obj="x@0"),
            mk(3, 10.0, "fanout_sent", dst=1, writes=1, checks=0),
            mk(4, 35.0, "validated", ok=True, scope="delegate"),
            mk(5, 60.0, "committed", ops=1),
            mk(6, 61.0, "view_notified", kind="commit", mode="optimistic"),
        ]

    def test_lifecycle_reconstruction(self):
        vt, events = self._events()
        (span,) = build_spans(events)
        assert span.vt == vt and span.origin == 0 and span.attempt == 1
        assert span.submit_ms == 10.0 and span.resolved_ms == 60.0
        assert span.resolution == "committed" and span.complete
        assert span.duration_ms == 50.0
        assert span.validate_latency_ms == 25.0
        assert span.notify_lag_ms == 1.0
        assert span.guesses == {"NC": 1, "RL": 1}
        assert span.fanout_sites == [1]

    def test_abort_span_keeps_reason_and_first_resolution_wins(self):
        vt = VirtualTime(7, 1)
        mk = lambda seq, t, event_kind, **data: ProtocolEvent(
            seq=seq, time_ms=t, site=1, kind=event_kind, txn_vt=vt, data=data
        )
        events = [
            mk(0, 0.0, "txn_submitted", attempt=2),
            mk(1, 9.0, "aborted", reason="RL conflict on x", kind="conflict"),
            mk(2, 12.0, "committed"),  # late echo must not flip the verdict
        ]
        (span,) = build_spans(events)
        assert span.resolution == "aborted"
        assert span.abort_reason == "RL conflict on x"
        assert span.resolved_ms == 9.0

    def test_pre_fanout_abort_emits_degenerate_span(self):
        """Regression: a transaction aborting before any fanout must still
        produce a span, flagged ``aborted_pre_fanout`` (it has no
        transit/validate phases, but dropping it would hide the abort from
        every span-derived analysis)."""
        vt = VirtualTime(9, 2)
        mk = lambda seq, t, event_kind, **data: ProtocolEvent(
            seq=seq, time_ms=t, site=2, kind=event_kind, txn_vt=vt, data=data
        )
        events = [
            mk(0, 0.0, "txn_submitted", attempt=1),
            mk(1, 2.0, "aborted", reason="user abort", kind="user"),
        ]
        (span,) = build_spans(events)
        assert span.resolution == "aborted"
        assert span.aborted_pre_fanout is True
        assert span.first_fanout_ms is None
        assert span.duration_ms == 2.0
        assert span.to_dict()["aborted_pre_fanout"] is True
        summary = span_summary([span])
        assert summary["aborted"] == 1
        assert summary["aborted_pre_fanout"] == 1

    def test_post_fanout_abort_is_not_flagged(self):
        vt = VirtualTime(9, 2)
        mk = lambda seq, t, event_kind, **data: ProtocolEvent(
            seq=seq, time_ms=t, site=2, kind=event_kind, txn_vt=vt, data=data
        )
        events = [
            mk(0, 0.0, "txn_submitted", attempt=1),
            mk(1, 1.0, "fanout_sent", dst=0, writes=1, checks=0),
            mk(2, 9.0, "aborted", reason="RL conflict", kind="conflict"),
        ]
        (span,) = build_spans(events)
        assert span.aborted_pre_fanout is False
        assert span_summary([span])["aborted_pre_fanout"] == 0

    def test_summary(self):
        _, events = self._events()
        summary = span_summary(build_spans(events))
        assert summary["spans"] == 1 and summary["committed"] == 1
        assert summary["aborted"] == 0 and summary["in_flight"] == 0
        assert summary["aborted_pre_fanout"] == 0
        assert summary["commit_duration_ms"]["mean"] == 50.0


class TestEndToEndDeterminism:
    def _observed_run(self):
        session = Session.simulated(latency_ms=20.0)
        bus = session.observe()
        sites = session.add_sites(3)
        objs = session.replicate(DInt, "x", sites, initial=0)
        session.settle()
        for i in range(5):
            sites[i % 3].transact(lambda i=i: objs[i % 3].set(objs[i % 3].get() + 1))
            session.settle()
        return session, bus

    def test_identical_runs_record_identical_timelines(self):
        s1, b1 = self._observed_run()
        s2, b2 = self._observed_run()
        assert b1.timeline() == b2.timeline()
        assert to_jsonl(b1.events) == to_jsonl(b2.events)
        assert s1.metrics_snapshot() == s2.metrics_snapshot()

    def test_event_kinds_are_registered(self):
        _, bus = self._observed_run()
        kinds = set(bus.counts_by_kind())
        assert kinds <= EVENT_KINDS
        assert {"txn_submitted", "guess_made", "fanout_sent", "committed",
                "message_sent", "op_applied"} <= kinds

    def test_unobserved_session_records_nothing(self):
        session = Session.simulated(latency_ms=20.0)
        sites = session.add_sites(2)
        objs = session.replicate(DInt, "x", sites, initial=0)
        session.settle()
        sites[0].transact(lambda: objs[0].set(1))
        session.settle()
        assert len(session.bus) == 0
        assert session.bus._seq == 0  # emit never even entered

    def test_counters_match_events(self):
        session, bus = self._observed_run()
        committed_vts = {
            e.txn_vt for e in bus.filter(kind="committed") if e.site == e.txn_vt.site
        }
        total_commits = sum(s["counters"].get("txn.commits", 0) for s in session.metrics_snapshot())
        # Both sides count the replication-setup transactions too, since
        # observation started before add_sites; the 5 workload commits
        # are a lower bound.
        assert total_commits == len(committed_vts) >= 5
