"""Multi-site tests for indirect propagation through composites (section 3.2)."""

import pytest

from repro import Session
from repro.sim.network import FixedLatency
from repro import DInt, DList, DMap


def list_pair(latency=20.0, **kwargs):
    session = Session.simulated(latency_ms=latency, **kwargs)
    alice, bob = session.add_sites(2)
    la, lb = session.replicate(DList, "doc", [alice, bob])
    session.settle()
    return session, alice, bob, la, lb


def map_pair(latency=20.0, **kwargs):
    session = Session.simulated(latency_ms=latency, **kwargs)
    alice, bob = session.add_sites(2)
    ma, mb = session.replicate(DMap, "board", [alice, bob])
    session.settle()
    return session, alice, bob, ma, mb


def value(obj):
    return obj.value_at(obj.current_value_vt())


class TestListPropagation:
    def test_append_propagates(self):
        session, alice, bob, la, lb = list_pair()
        alice.transact(lambda: la.append("string", "hello"))
        session.settle()
        assert value(lb) == ["hello"]

    def test_insert_remove_propagate(self):
        session, alice, bob, la, lb = list_pair()
        alice.transact(lambda: [la.append("int", i) for i in (1, 3)])
        session.settle()
        bob.transact(lambda: lb.insert(1, "int", 2))
        session.settle()
        assert value(la) == value(lb) == [1, 2, 3]
        alice.transact(lambda: la.remove(0))
        session.settle()
        assert value(la) == value(lb) == [2, 3]

    def test_child_update_propagates_via_path(self):
        """Updates to embedded children travel root-relative (indirect
        propagation) and resolve by VT-tagged path at the destination."""
        session, alice, bob, la, lb = list_pair()
        alice.transact(lambda: la.append("int", 10))
        session.settle()
        bob.transact(lambda: lb.child_at(0).set(11))
        session.settle()
        assert value(la) == value(lb) == [11]

    def test_deep_nesting_propagates(self):
        session, alice, bob, la, lb = list_pair()

        def build():
            inner = la.append("list", [("string", "x")])
            inner.append("map", {"k": ("int", 1)})

        alice.transact(build)
        session.settle()
        assert value(lb) == [["x", {"k": 1}]]

        def edit():
            inner_b = lb.child_at(0)
            inner_b.child_at(1).put("k2", "int", 2)

        bob.transact(edit)
        session.settle()
        assert value(la) == [["x", {"k": 1, "k2": 2}]]

    def test_concurrent_inserts_serialize_via_conflict(self):
        """Two concurrent inserts into the same list conflict (structure
        read-write); retry serializes them and replicas converge."""
        session, alice, bob, la, lb = list_pair(latency=50.0)
        alice.transact(lambda: la.append("string", "from-alice"))
        bob.transact(lambda: lb.append("string", "from-bob"))  # concurrent
        session.settle()
        va, vb = value(la), value(lb)
        assert va == vb
        assert sorted(va) == ["from-alice", "from-bob"]

    def test_concurrent_child_updates_to_different_children_commute(self):
        session, alice, bob, la, lb = list_pair(latency=50.0)
        alice.transact(lambda: [la.append("int", 0) for _ in range(2)])
        session.settle()
        alice.transact(lambda: la.child_at(0).set(100))
        bob.transact(lambda: lb.child_at(1).set(200))  # concurrent, disjoint
        session.settle()
        assert value(la) == value(lb) == [100, 200]


class TestBlockingOnMissingStructure:
    def test_child_write_blocks_until_insert_arrives(self):
        """Paper 3.2.1: propagation down the tree blocks until the earlier
        structural update is received."""
        session = Session.simulated(latency_ms=10)
        s0, s1, s2 = session.add_sites(3)
        lists = session.replicate(DList, "doc", [s0, s1, s2])
        session.settle()
        # Make s0's messages to s2 very slow: s2 learns about the insert
        # late, but s1's child update (which depends on it) arrives early.
        session.network.set_link_latency(0, 2, FixedLatency(500.0))
        holder = []
        s0.transact(lambda: holder.append(lists[0].append("int", 1)))
        session.run_for(50)  # insert reached s1, not s2
        assert value(lists[1]) == [1]
        assert value(lists[2]) == []
        s1.transact(lambda: lists[1].child_at(0).set(2))
        session.run_for(100)
        # s2 received the child write but buffered it (missing predecessor).
        assert value(lists[2]) == []
        assert len(s2.engine.pending_propagates) >= 1
        session.settle()
        assert value(lists[2]) == [2]
        assert not s2.engine.pending_propagates

    def test_remove_blocks_until_insert_arrives(self):
        session = Session.simulated(latency_ms=10)
        s0, s1, s2 = session.add_sites(3)
        lists = session.replicate(DList, "doc", [s0, s1, s2])
        session.settle()
        session.network.set_link_latency(0, 2, FixedLatency(500.0))
        s0.transact(lambda: lists[0].append("int", 1))
        session.run_for(50)
        s1.transact(lambda: lists[1].remove(0))
        session.run_for(100)
        assert value(lists[2]) == []
        session.settle()
        assert value(lists[2]) == []
        assert [value(l) for l in lists] == [[], [], []]


class TestMapPropagation:
    def test_put_delete_propagate(self):
        session, alice, bob, ma, mb = map_pair()
        alice.transact(lambda: ma.put("title", "string", "draft"))
        session.settle()
        assert value(mb) == {"title": "draft"}
        bob.transact(lambda: mb.delete("title"))
        session.settle()
        assert value(ma) == {}

    def test_concurrent_puts_different_keys_commute(self):
        session, alice, bob, ma, mb = map_pair(latency=50.0)
        alice.transact(lambda: ma.put("a", "int", 1))
        bob.transact(lambda: mb.put("b", "int", 2))
        session.settle()
        assert value(ma) == value(mb) == {"a": 1, "b": 2}

    def test_concurrent_puts_same_key_lww(self):
        """Map puts are blind writes: both commit; the later VT wins."""
        session, alice, bob, ma, mb = map_pair(latency=50.0)
        before = session.counters()["aborts_conflict"]
        alice.transact(lambda: ma.put("k", "int", 1))
        bob.transact(lambda: mb.put("k", "int", 2))
        session.settle()
        assert session.counters()["aborts_conflict"] == before
        assert value(ma) == value(mb)
        assert value(ma)["k"] in (1, 2)

    def test_child_update_in_map(self):
        session, alice, bob, ma, mb = map_pair()
        alice.transact(lambda: ma.put("cell", "int", 5))
        session.settle()
        bob.transact(lambda: mb.child("cell").set(6))
        session.settle()
        assert value(ma) == {"cell": 6}


class TestRollbackAcrossSites:
    def test_aborted_insert_rolled_back_everywhere(self):
        """An insert that loses a structure conflict is undone at replicas."""
        session, alice, bob, la, lb = list_pair(latency=50.0)
        alice.transact(lambda: la.append("string", "A"))
        bob.transact(lambda: lb.append("string", "B"))
        session.settle()
        # Both eventually committed (one after retry); contents identical,
        # no duplicated or phantom entries.
        va = value(la)
        assert value(lb) == va
        assert sorted(va) == ["A", "B"]
        assert len(va) == 2


class TestMixedScalarComposite:
    def test_transaction_spanning_scalar_and_composite(self):
        session = Session.simulated(latency_ms=20)
        alice, bob = session.add_sites(2)
        counters = session.replicate(DInt, "count", [alice, bob], initial=0)
        docs = session.replicate(DList, "doc", [alice, bob])
        session.settle()

        def body():
            docs[0].append("string", "entry")
            counters[0].set(counters[0].get() + 1)

        outcome = alice.transact(body)
        session.settle()
        assert outcome.committed
        assert value(docs[1]) == ["entry"]
        assert counters[1].get() == 1
