"""Views attached to composites: subtree tracking, committed-only reads."""

import pytest

from repro import Session, View
from repro import DList, DMap


class Rec(View):
    def __init__(self, obj):
        self.obj = obj
        self.states = []
        self.commit_count = 0

    def update(self, changed, snapshot):
        self.states.append(snapshot.read(self.obj))

    def commit(self):
        self.commit_count += 1


def list_pair(latency=40.0, **kwargs):
    session = Session.simulated(latency_ms=latency, **kwargs)
    alice, bob = session.add_sites(2)
    la, lb = session.replicate(DList, "doc", [alice, bob])
    session.settle()
    return session, alice, bob, la, lb


class TestOptimisticCompositeViews:
    def test_child_edit_notifies_root_view(self):
        session, alice, bob, la, lb = list_pair()
        alice.transact(lambda: la.append("string", "draft"))
        session.settle()
        view = Rec(lb)
        lb.attach(view, "optimistic")
        assert view.states[-1] == ["draft"]
        alice.transact(lambda: la.child_at(0).set("final"))
        session.settle()
        assert view.states[-1] == ["final"]

    def test_structure_change_notifies(self):
        session, alice, bob, la, lb = list_pair()
        view = Rec(lb)
        lb.attach(view, "optimistic")
        alice.transact(lambda: [la.append("int", i) for i in range(3)])
        session.settle()
        assert view.states[-1] == [0, 1, 2]
        bob.transact(lambda: lb.remove(1))
        session.settle()
        assert view.states[-1] == [0, 2]

    def test_rollback_renotifies_with_restored_structure(self):
        session, alice, bob, la, lb = list_pair(latency=60.0)
        view = Rec(lb)
        lb.attach(view, "optimistic")
        # Conflicting concurrent inserts: one side aborts and re-executes.
        alice.transact(lambda: la.append("string", "A"))
        bob.transact(lambda: lb.append("string", "B"))
        session.settle()
        final = view.states[-1]
        assert sorted(final) == ["A", "B"]
        assert view.commit_count >= 1


class TestPessimisticCompositeViews:
    def test_never_shows_uncommitted_structure(self):
        session, alice, bob, la, lb = list_pair(latency=60.0, delegation_enabled=False)
        view = Rec(lb)
        lb.attach(view, "pessimistic")
        assert view.states == [[]]
        bob.transact(lambda: lb.append("string", "mine"))
        # Optimistically applied locally, but the pessimistic view waits.
        assert view.states == [[]]
        session.settle()
        assert view.states[-1] == ["mine"]

    def test_lossless_structural_sequence(self):
        session, alice, bob, la, lb = list_pair(latency=30.0)
        view = Rec(lb)
        lb.attach(view, "pessimistic")
        for word in ("a", "b", "c"):
            alice.transact(lambda w=word: la.append("string", w))
            session.settle()
        assert view.states == [[], ["a"], ["a", "b"], ["a", "b", "c"]]

    def test_child_value_updates_delivered_in_order(self):
        session, alice, bob, la, lb = list_pair(latency=30.0)
        alice.transact(lambda: la.append("int", 0))
        session.settle()
        view = Rec(lb)
        lb.attach(view, "pessimistic")
        for v in (1, 2, 3):
            alice.transact(lambda vv=v: la.child_at(0).set(vv))
            session.settle()
        assert view.states == [[0], [1], [2], [3]]

    def test_map_view_committed_only(self):
        session = Session.simulated(latency_ms=60.0, delegation_enabled=False)
        alice, bob = session.add_sites(2)
        ma, mb = session.replicate(DMap, "board", [alice, bob])
        session.settle()
        view = Rec(mb)
        mb.attach(view, "pessimistic")
        bob.transact(lambda: mb.put("k", "int", 1))
        assert view.states == [{}]
        session.settle()
        assert view.states[-1] == {"k": 1}

    def test_mixed_subtree_snapshot_consistency(self):
        """A pessimistic view over a list of maps never sees a child state
        newer than the structure it sits in."""
        session, alice, bob, la, lb = list_pair(latency=30.0)
        view = Rec(lb)
        lb.attach(view, "pessimistic")

        def build():
            la.append("map", {"v": ("int", 1)})

        alice.transact(build)
        session.settle()

        def bump():
            la.child_at(0).child("v").set(2)

        alice.transact(bump)
        session.settle()
        assert view.states == [[], [{"v": 1}], [{"v": 2}]]
