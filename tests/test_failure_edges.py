"""Edge-case tests for the failure protocols: cascading failures,
coordinator loss, failures during joins, and stability-bound GC."""

import pytest

from repro import Session
from repro.sim.network import FixedLatency
from repro.vtime import VirtualTime
from repro import DInt


def quad(latency=20.0, **kwargs):
    session = Session.simulated(latency_ms=latency, **kwargs)
    sites = session.add_sites(4)
    objs = session.replicate(DInt, "x", sites, initial=0)
    session.settle()
    return session, sites, objs


class TestCoordinatorFailure:
    def test_coordinator_dies_after_peer(self):
        """The minimum surviving site coordinates; if IT then fails, the
        next minimum takes over on the second notification."""
        session, sites, objs = quad()
        session.network.fail_site(3)  # plain replica first
        session.settle()
        # Site 0 coordinated the resolution/repair.  Now site 0 dies too.
        session.network.fail_site(0)
        session.settle()
        assert objs[1].graph().sites() == [1, 2]
        out = sites[2].transact(lambda: objs[2].set(9))
        session.settle()
        assert out.committed
        assert objs[1].get() == 9

    def test_rapid_double_failure(self):
        """Two failures in quick succession (second during the first's
        protocol) still converge."""
        session, sites, objs = quad()
        session.network.fail_site(0, notify_after_ms=0.0)
        session.network.fail_site(1, notify_after_ms=5.0)
        session.settle()
        assert objs[2].graph().sites() == [2, 3]
        sites[3].transact(lambda: objs[3].set(4))
        session.settle()
        assert objs[2].get() == 4


class TestFailureDuringJoin:
    def test_join_target_fails_before_reply(self):
        """B crashes after the join request is sent; the joiner's blocked
        transaction must not commit a half-joined state."""
        session = Session.simulated(latency_ms=50)
        alice, bob = session.add_sites(2)
        a_obj = alice.create_int("x", 5)
        assoc = alice.create_association("x.assoc")
        alice.transact(lambda: assoc.create_relationship("x.rel"))
        session.settle()
        alice.join(assoc, "x.rel", a_obj)
        session.settle()
        assoc_b = bob.import_invitation(assoc.make_invitation(), "x.assoc")
        session.settle()
        b_obj = bob.create_int("x", 0)
        out = bob.join(assoc_b, "x.rel", b_obj)
        # Crash alice before the reply can arrive.
        session.network.fail_site(0)
        session.settle()
        # The join cannot have succeeded; bob's object stays standalone and
        # usable.
        assert not out.committed
        assert b_obj.graph().is_singleton()
        bob.transact(lambda: b_obj.set(1))
        session.settle()
        assert b_obj.get() == 1


class TestStabilityBound:
    def test_bound_is_min_over_sites(self):
        session, sites, objs = quad()
        site = sites[0]
        bound = site.stability_bound([0, 1, 2, 3])
        expected = min(
            [site.clock.counter]
            + [site.last_heard.get(s, 0) for s in (1, 2, 3)]
        )
        assert bound == VirtualTime(expected, -1)

    def test_own_site_uses_clock(self):
        session = Session.simulated(latency_ms=10)
        site = session.add_site()
        site.create_int("x")
        site.transact(lambda: site.objects["s0:x"].set(1))
        assert site.stability_bound([0]).counter == site.clock.counter

    def test_unheard_site_pins_bound_at_zero(self):
        session = Session.simulated(latency_ms=10)
        a = session.add_site()
        b = session.add_site()
        assert a.stability_bound([0, 1]).counter == 0

    def test_gc_respects_slow_silent_site(self):
        """A replica site that has not spoken recently pins history: its
        in-flight (stale-VT) transactions must stay checkable."""
        session = Session.simulated(latency_ms=10)
        s0, s1, s2 = session.add_sites(3)
        objs = session.replicate(DInt, "x", [s0, s1, s2], initial=0)
        session.settle()
        # Cut s2 off (very slow outgoing links): it goes silent.
        session.network.set_link_latency(2, 0, FixedLatency(100000.0))
        session.network.set_link_latency(2, 1, FixedLatency(100000.0))
        heard_before = dict(s0.last_heard)
        for v in range(1, 6):
            s0.transact(lambda vv=v: objs[0].set(vv))
            session.run_for(50)
        # History at the primary retains everything since s2 went silent.
        silent_counter = heard_before.get(2, 0)
        retained = [e.vt for e in objs[0].history]
        assert retained[0].counter <= silent_counter + 1

    def test_reservations_survive_until_stability(self):
        """The regression scenario behind the stability-bound fix: a
        read-modify-write from a stale-clocked site must still be caught."""
        session = Session.simulated(latency_ms=10)
        s0, s1, s2 = session.add_sites(3)
        objs = session.replicate(DInt, "x", [s0, s1, s2], initial=0)
        session.settle()
        # s2 reads x=0 now, then is partitioned off while s0 churns.
        session.network.set_link_latency(0, 2, FixedLatency(100000.0))
        session.network.set_link_latency(1, 2, FixedLatency(100000.0))
        for _ in range(3):
            s0.transact(lambda: objs[0].set(objs[0].get() + 1))
            session.run_for(50)
        assert objs[0].get() == 3
        # s2's clock is stale; it issues an increment against its old view.
        out = s2.transact(lambda: objs[2].set(objs[2].get() + 1))
        # Reconnect: the stale transaction reaches the primary.
        session.network.set_link_latency(0, 2, FixedLatency(10.0))
        session.network.set_link_latency(1, 2, FixedLatency(10.0))
        session.network.set_link_latency(2, 0, FixedLatency(10.0))
        session.network.set_link_latency(2, 1, FixedLatency(10.0))
        session.settle()
        # The increment must not be lost OR double-applied: final = 4.
        assert out.committed
        assert [o.get() for o in objs] == [4, 4, 4]


class TestClockMerging:
    def test_clocks_converge_through_traffic(self):
        session = Session.simulated(latency_ms=10)
        alice, bob = session.add_sites(2)
        objs = session.replicate(DInt, "x", [alice, bob], initial=0)
        session.settle()
        alice.transact(lambda: objs[0].set(1))
        session.settle()
        assert abs(alice.clock.counter - bob.clock.counter) <= 2

    def test_last_heard_monotone(self):
        session = Session.simulated(latency_ms=10)
        alice, bob = session.add_sites(2)
        objs = session.replicate(DInt, "x", [alice, bob], initial=0)
        session.settle()
        h1 = bob.last_heard.get(0, 0)
        alice.transact(lambda: objs[0].set(1))
        session.settle()
        h2 = bob.last_heard.get(0, 0)
        assert h2 >= h1
