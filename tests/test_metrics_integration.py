"""Integration of bench metrics with real workload runs."""

import pytest

from repro import Session
from repro.bench.metrics import ConflictStats, DeviationTotals, LatencyStats
from repro.bench import attach_probe
from repro import DInt
from repro.workloads import (
    PoissonArrivals,
    ReadModifyWriteWorkload,
    UniformArrivals,
    WorkloadParty,
    run_workload,
)


def scenario():
    session = Session.simulated(latency_ms=40, seed=11)
    alice, bob = session.add_sites(2)
    objs = session.replicate(DInt, "x", [alice, bob], initial=0)
    session.settle()
    return session, alice, bob, objs


class TestLatencyStatsFromWorkload:
    def test_stats_reflect_protocol_latencies(self):
        session, alice, bob, objs = scenario()
        parties = [
            WorkloadParty(
                site=bob,  # remote from the primary: commits cost 2t
                workload=ReadModifyWriteWorkload(objs[1]),
                arrivals=UniformArrivals(500.0),
                count=10,
            )
        ]
        summary = run_workload(session, parties, seed=1)
        stats = LatencyStats.from_outcomes(summary["outcomes"])
        assert stats.count == 10
        assert stats.minimum == 80.0  # 2t with t = 40 ms
        assert stats.p50 == 80.0
        assert stats.maximum >= stats.p95 >= stats.p50


class TestConflictStatsFromWorkload:
    def test_contended_run_counts_retries(self):
        session, alice, bob, objs = scenario()
        parties = [
            WorkloadParty(
                site=alice,
                workload=ReadModifyWriteWorkload(objs[0]),
                arrivals=PoissonArrivals(120.0),
                count=15,
            ),
            WorkloadParty(
                site=bob,
                workload=ReadModifyWriteWorkload(objs[1]),
                arrivals=PoissonArrivals(120.0),
                count=15,
            ),
        ]
        summary = run_workload(session, parties, seed=2)
        stats = ConflictStats.from_outcomes(summary["outcomes"])
        assert stats.transactions == 30
        assert stats.commits == 30
        assert stats.attempts >= 30
        assert stats.conflict_retries == stats.attempts - 30
        assert 0.0 <= stats.rollback_rate < 1.0
        # Both increments streams fully applied.
        assert objs[0].get() == 30

    def test_conflict_stats_match_session_counters(self):
        session, alice, bob, objs = scenario()
        parties = [
            WorkloadParty(
                site=bob,
                workload=ReadModifyWriteWorkload(objs[1]),
                arrivals=UniformArrivals(100.0),
                count=5,
            ),
            WorkloadParty(
                site=alice,
                workload=ReadModifyWriteWorkload(objs[0]),
                arrivals=UniformArrivals(100.0, start_ms=50.0),
                count=5,
            ),
        ]
        summary = run_workload(session, parties, seed=3)
        stats = ConflictStats.from_outcomes(summary["outcomes"])
        assert stats.conflict_retries == summary["counters"]["retries"]


class TestDeviationTotalsFromWorkload:
    def test_totals_collect_across_sites(self):
        session, alice, bob, objs = scenario()
        attach_probe(alice, [objs[0]], "optimistic")
        attach_probe(bob, [objs[1]], "optimistic")
        parties = [
            WorkloadParty(
                site=site,
                workload=ReadModifyWriteWorkload(obj),
                arrivals=PoissonArrivals(150.0),
                count=10,
            )
            for site, obj in ((alice, objs[0]), (bob, objs[1]))
        ]
        run_workload(session, parties, seed=4)
        totals = DeviationTotals.from_session(session)
        assert totals.notifications > 0
        rates = totals.rate_per_notification()
        assert all(0.0 <= v <= 1.0 for v in rates.values())
