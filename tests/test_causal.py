"""Tests for the causal analysis engine (repro.obs.causal).

Covers the happens-before DAG (message pairing, reachability), the
acceptance-criteria invariants — critical-path segments summing exactly to
span durations, byte-stable analysis on a fixed seed, and an abort's
causal chain validated edge-by-edge against the recorded message
timeline — plus guess-dependency graph construction and the exporters.
"""

import json

import pytest

from repro import Session
from repro.obs import (
    abort_causal_chain,
    analysis_json,
    analyze_events,
    build_causal_graph,
    build_guess_graph,
    build_spans,
    commit_critical_paths,
    critical_path_report,
    events_from_timeline,
    format_critical_path_report,
    parse_vt,
)
from repro.obs.causal import SEGMENTS
from repro.obs.events import ProtocolEvent, event_to_dict
from repro.vtime import VirtualTime
from repro import DInt


def make_event(seq, time_ms, site, kind, vt=None, **data):
    return ProtocolEvent(
        seq=seq, time_ms=float(time_ms), site=site, kind=kind, txn_vt=vt, data=data
    )


def conflict_run():
    """A deterministic run with one RL-denied (then retried) transaction.

    Two read-modify-writes race from different sites: the loser's write
    window at the primary contains the winner's commit, producing a
    ``validated ok=False`` denial with a non-empty guessed-against set,
    an AbortMsg back to the origin, and a successful retry.
    """
    session = Session.simulated(latency_ms=20, seed=1)
    bus = session.observe()
    alice, bob, carol = session.add_sites(3)
    objs = session.replicate(DInt, "x", [alice, bob, carol], initial=0)
    session.settle()
    bus.clear()
    out_a = alice.transact(lambda: objs[0].set(objs[0].get() + 1))
    out_b = bob.transact(lambda: objs[1].set(objs[1].get() + 1))
    session.settle()
    assert out_a.committed and out_b.committed
    assert out_b.attempts == 2  # bob lost the race and retried
    return bus.events


class TestParseVt:
    def test_round_trips_and_rejects(self):
        vt = VirtualTime(7, 1)
        assert parse_vt(vt) is vt
        assert parse_vt(str(vt)) == vt
        assert parse_vt("VT(-3@-1)") == VirtualTime(-3, -1)
        assert parse_vt("snap:0:1") is None
        assert parse_vt(["snap", 0, 1]) is None
        assert parse_vt(None) is None
        assert parse_vt(7) is None


class TestCausalGraph:
    def test_every_delivery_pairs_with_its_send(self):
        events = conflict_run()
        graph = build_causal_graph(events)
        message_edges = [e for e in graph.edges if e.kind == "message"]
        deliveries = [e for e in events if e.kind == "message_delivered"]
        # Every delivery has exactly one incoming message edge, from the
        # send that carries the same network msg_id.
        assert len(message_edges) == len(deliveries)
        by_seq = {e.seq: e for e in events}
        for edge in message_edges:
            send, recv = by_seq[edge.src], by_seq[edge.dst]
            assert send.kind == "message_sent"
            assert recv.kind == "message_delivered"
            assert send.data["msg_id"] == recv.data["msg_id"]
            assert send.data["msg_type"] == recv.data["msg_type"]
            assert send.data["dst"] == recv.site

    def test_happens_before_follows_messages_not_time(self):
        events = conflict_run()
        graph = build_causal_graph(events)
        submits = [e for e in events if e.kind == "txn_submitted"]
        commits = [
            e
            for e in events
            if e.kind == "committed" and e.txn_vt is not None
            and e.site == e.txn_vt.site
        ]
        # A transaction's submit always precedes its own origin commit.
        for commit in commits:
            submit = next(s for s in submits if s.txn_vt == commit.txn_vt)
            assert graph.happens_before(submit.seq, commit.seq)
            assert not graph.happens_before(commit.seq, submit.seq)

    def test_concurrent_events_are_not_ordered(self):
        # Two sites with no messages between their first events: a send at
        # s0 and an independent event at s1 earlier in seq order but with
        # no path.
        events = [
            make_event(0, 0.0, 0, "txn_submitted", VirtualTime(1, 0), attempt=1),
            make_event(1, 0.0, 1, "txn_submitted", VirtualTime(1, 1), attempt=1),
        ]
        graph = build_causal_graph(events)
        assert not graph.happens_before(0, 1)
        assert not graph.happens_before(1, 0)
        assert graph.path(0, 1) is None

    def test_path_returns_real_edges(self):
        events = conflict_run()
        graph = build_causal_graph(events)
        sends = [e for e in events if e.kind == "message_sent"]
        first = sends[0]
        delivery = next(
            e
            for e in events
            if e.kind == "message_delivered"
            and e.data["msg_id"] == first.data["msg_id"]
        )
        path = graph.path(first.seq, delivery.seq)
        assert path is not None
        assert path[-1].kind == "message"
        # The path's hops chain correctly.
        for a, b in zip(path, path[1:]):
            assert a.dst == b.src


class TestAbortCausalChain:
    def test_abort_chain_validated_edge_by_edge_against_message_timeline(self):
        """Acceptance: the causal chain of an RL-denied abort is a real
        happens-before path — every hop is re-verified here against the
        raw recorded timeline, independent of the graph's own edge list."""
        events = conflict_run()
        graph = build_causal_graph(events)
        by_seq = {e.seq: e for e in events}
        abort_vts = sorted(
            {
                e.txn_vt
                for e in events
                if e.kind == "aborted" and e.txn_vt is not None
            },
            key=lambda v: v.key,
        )
        assert abort_vts, "conflict run must produce an abort"
        vt = abort_vts[0]
        chain = abort_causal_chain(graph, vt)
        assert chain["connected"]
        assert chain["via_denial"]
        hops = chain["hops"]
        assert hops, "chain must have at least one hop"

        # The chain passes through the propagate delivery at the denying
        # primary and the AbortMsg delivery back at the origin.
        kinds = [(h["kind"], h["label"]) for h in hops]
        assert ("message", "TxnPropagateMsg") in kinds
        assert ("message", "AbortMsg") in kinds

        # Edge-by-edge validation against the raw timeline: program hops
        # are same-site seq-forward; message hops correspond to a recorded
        # send/deliver pair sharing one msg_id.
        for hop in hops:
            src, dst = by_seq[hop["src_seq"]], by_seq[hop["dst_seq"]]
            assert src.seq < dst.seq
            if hop["kind"] == "program":
                assert src.site == dst.site
            else:
                assert hop["kind"] == "message"
                assert src.kind == "message_sent"
                assert dst.kind == "message_delivered"
                assert src.data["msg_id"] == dst.data["msg_id"]
                assert src.site != dst.site
        # ...and consecutive hops chain without gaps.
        for a, b in zip(hops, hops[1:]):
            assert a["dst_seq"] <= b["src_seq"]

        # The chain starts at the submit and ends at the origin abort.
        assert by_seq[hops[0]["src_seq"]].kind == "txn_submitted"
        last = by_seq[hops[-1]["dst_seq"]]
        assert last.kind == "aborted" and last.site == vt.site

    def test_unresolvable_chain_reports_disconnected(self):
        events = [
            make_event(0, 0.0, 0, "txn_submitted", VirtualTime(1, 0), attempt=1),
        ]
        graph = build_causal_graph(events)
        chain = abort_causal_chain(graph, VirtualTime(1, 0))
        assert chain == {"connected": False, "via_denial": False, "hops": []}


class TestCriticalPath:
    def test_segments_sum_exactly_to_span_duration(self):
        """Acceptance: per-VT segment sums equal the PR 3 span durations."""
        events = conflict_run()
        spans = {str(s.vt): s for s in build_spans(events)}
        paths = commit_critical_paths(events)
        assert paths, "run must commit transactions"
        for path in paths:
            span = spans[str(path.vt)]
            assert sum(path.segments.values()) == pytest.approx(
                span.duration_ms, abs=1e-9
            )
            assert path.duration_ms == pytest.approx(span.duration_ms, abs=1e-9)
            assert set(path.segments) == set(SEGMENTS)
            assert all(v >= 0.0 for v in path.segments.values())

    def test_remote_commit_attributes_transit(self):
        # Synthetic: submit 0ms, fanout 1ms, delivered at primary 11ms,
        # validated 12ms, committed at origin 20ms.
        vt = VirtualTime(5, 1)
        events = [
            make_event(0, 0.0, 1, "txn_submitted", vt, attempt=1),
            make_event(1, 1.0, 1, "fanout_sent", vt, dst=0),
            make_event(2, 1.0, 1, "message_sent", vt, dst=0,
                       msg_type="TxnPropagateMsg", msg_id=0),
            make_event(3, 11.0, 0, "message_delivered", vt, src=1,
                       msg_type="TxnPropagateMsg", msg_id=0),
            make_event(4, 12.0, 0, "validated", vt, ok=True, reason="",
                       scope="primary", against=()),
            make_event(5, 20.0, 1, "committed", vt, ops=1),
        ]
        (path,) = commit_critical_paths(events)
        assert path.validator_site == 0
        assert path.segments == {
            "submit_fanout": 1.0,
            "transit": 10.0,
            "validate": 1.0,
            "ack": 8.0,
        }
        assert path.dominant == "transit"
        assert path.duration_ms == 20.0

    def test_local_commit_collapses_to_ack(self):
        vt = VirtualTime(2, 0)
        events = [
            make_event(0, 0.0, 0, "txn_submitted", vt, attempt=1),
            make_event(1, 4.0, 0, "committed", vt, ops=1),
        ]
        (path,) = commit_critical_paths(events)
        assert path.validator_site == -1
        assert path.segments == {
            "submit_fanout": 0.0,
            "transit": 0.0,
            "validate": 0.0,
            "ack": 4.0,
        }

    def test_report_shares_sum_to_100(self):
        events = conflict_run()
        report = critical_path_report(events)
        assert report["committed"] > 0
        total_share = sum(
            report["segments"][name]["share_pct"] for name in SEGMENTS
        )
        assert total_share == pytest.approx(100.0, abs=0.1)
        assert report["dominant"] in SEGMENTS
        dominant_counts = sum(
            report["segments"][name]["dominant_in"] for name in SEGMENTS
        )
        assert dominant_counts == report["committed"]

    def test_empty_timeline_report(self):
        report = critical_path_report([])
        assert report["committed"] == 0
        assert report["dominant"] is None
        text = format_critical_path_report(report)
        assert "no committed transactions" in text


class TestGuessGraph:
    def test_rc_and_denial_edges(self):
        vt_a, vt_b, vt_c = VirtualTime(1, 0), VirtualTime(2, 1), VirtualTime(3, 2)
        events = [
            # c reads b's uncommitted value; b was denied against a.
            make_event(0, 0.0, 1, "guess_made", vt_b, guess="RL", obj="s0:x"),
            make_event(1, 1.0, 0, "validated", vt_b, ok=False,
                       reason=f"RL denied on s0:x: write at {vt_a} in (..)",
                       scope="primary", against=(str(vt_a),)),
            make_event(2, 2.0, 2, "guess_made", vt_c, guess="RC", obj="s0:x",
                       depends_on=str(vt_b)),
        ]
        graph = build_guess_graph(events)
        edges = {(e.src, e.dst, e.guess) for e in graph.edges}
        assert (str(vt_b), str(vt_a), "RL") in edges
        assert (str(vt_c), str(vt_b), "RC") in edges
        rl_edge = next(e for e in graph.edges if e.guess == "RL")
        assert rl_edge.obj == "s0:x"

        # The transitive chain from c reaches a through b.
        chain = graph.dependency_chain(vt_c)
        assert [(e.src, e.dst) for e in chain] == [
            (str(vt_c), str(vt_b)),
            (str(vt_b), str(vt_a)),
        ]
        assert graph.cascade_roots() == [str(vt_a)]

    def test_real_denial_produces_against_edge(self):
        events = conflict_run()
        graph = build_guess_graph(events)
        rl_edges = [e for e in graph.edges if e.guess == "RL"]
        assert rl_edges, "RL denial must produce a guess edge"
        edge = rl_edges[0]
        # The guessed-against VT is the winning transaction, which
        # committed; the guessing transaction aborted.
        assert graph.nodes[edge.dst]["resolution"] == "committed"
        assert graph.nodes[edge.src]["resolution"] == "aborted"
        assert edge.obj == "s0:x"

    def test_snapshot_owner_tokens_are_kept_not_parsed(self):
        vt = VirtualTime(4, 1)
        events = [
            make_event(0, 0.0, 0, "validated", vt, ok=False,
                       reason="NC denied on s0:x: snapshot reservation ('snap', 0, 1)",
                       scope="primary", against=(["snap", 0, 1],)),
        ]
        graph = build_guess_graph(events)
        (edge,) = graph.edges
        assert edge.dst == "snap:0:1"
        assert edge.guess == "NC:snapshot"

    def test_dot_and_jsonl_exports(self):
        events = conflict_run()
        graph = build_guess_graph(events)
        dot = graph.to_dot()
        assert dot.startswith("digraph guesses {")
        assert dot.endswith("}\n")
        for edge in graph.edges:
            assert f'"{edge.src}" -> "{edge.dst}"' in dot
        jsonl = graph.to_jsonl()
        lines = [json.loads(line) for line in jsonl.splitlines()]
        assert len(lines) == len(graph.edges)
        seqs = [line["seq"] for line in lines]
        assert seqs == sorted(seqs)
        # Rooted export only contains the root's cascade.
        abort_vt = next(
            vt for vt, node in graph.nodes.items()
            if node["resolution"] == "aborted"
        )
        rooted = graph.to_dot(root=abort_vt)
        assert f'"{abort_vt}"' in rooted


class TestAnalyzeDeterminism:
    def test_fixed_seed_analysis_is_byte_stable(self):
        """Acceptance: same seed → byte-identical analysis, both across
        re-runs and across an export/import round trip of the timeline."""
        first = analysis_json(analyze_events(conflict_run()))
        second = analysis_json(analyze_events(conflict_run()))
        assert first == second
        events = conflict_run()
        round_tripped = events_from_timeline([event_to_dict(e) for e in events])
        assert analysis_json(analyze_events(round_tripped)) == analysis_json(
            analyze_events(events)
        )

    def test_format_report_is_byte_stable(self):
        report_a = critical_path_report(conflict_run())
        report_b = critical_path_report(conflict_run())
        assert format_critical_path_report(report_a) == format_critical_path_report(
            report_b
        )

    def test_analysis_embeds_abort_evidence(self):
        analysis = analyze_events(conflict_run())
        assert analysis["format"] == "repro-causal/1"
        assert analysis["dag"]["events"] > 0
        assert analysis["aborts"], "conflict run must analyze its abort"
        abort = analysis["aborts"][0]
        assert abort["causal_chain"]["connected"]
        assert abort["guess_chain"], "RL denial must appear in the guess chain"
        assert abort["aborted_pre_fanout"] is False


class TestEventsFromTimeline:
    def test_round_trip_preserves_structure(self):
        events = conflict_run()
        rebuilt = events_from_timeline([event_to_dict(e) for e in events])
        assert len(rebuilt) == len(events)
        for original, copy in zip(events, rebuilt):
            assert copy.seq == original.seq
            assert copy.kind == original.kind
            assert copy.site == original.site
            assert copy.txn_vt == original.txn_vt
            assert copy.time_ms == pytest.approx(original.time_ms, abs=1e-6)


class TestTraceAnalyzeCli:
    def test_trace_analyze_byte_stable_and_segment_sums(self, tmp_path, capsys):
        """Acceptance: `repro trace --analyze` on a fixed seed emits a
        byte-stable critical-path report whose per-VT segment sums equal
        the span durations."""
        from repro.cli import main

        outputs = []
        out = tmp_path / "t.jsonl"
        analysis_out = tmp_path / "a.json"
        for _run in range(2):
            code = main(
                [
                    "trace", "--seed", "7", "--index", "3", "--analyze",
                    "--format", "jsonl",
                    "--out", str(out), "--analysis-out", str(analysis_out),
                ]
            )
            assert code == 0
            outputs.append(
                (capsys.readouterr().out, analysis_out.read_text(), out.read_text())
            )
        assert outputs[0] == outputs[1]

        analysis = json.loads(outputs[0][1])
        spans = {
            str(s.vt): s
            for s in build_spans(
                events_from_timeline(
                    [json.loads(line) for line in outputs[0][2].splitlines()]
                )
            )
        }
        assert analysis["critical_path"]["per_txn"], "trial must commit txns"
        for entry in analysis["critical_path"]["per_txn"]:
            duration = spans[entry["vt"]].duration_ms
            assert sum(entry["segments"].values()) == pytest.approx(
                duration, abs=1e-5
            )

    def test_trace_exits_1_on_zero_events(self, tmp_path, capsys, monkeypatch):
        import repro.explore.trial as trial_mod
        from repro.cli import main

        class Empty:
            events = []

        monkeypatch.setattr(
            trial_mod, "run_trial", lambda config, observe=False, subscribers=(): Empty()
        )
        code = main(["trace", "--out", str(tmp_path / "t.json")])
        assert code == 1
        captured = capsys.readouterr()
        assert "zero" in captured.err
        assert not (tmp_path / "t.json").exists()

    def test_trace_quiet_suppresses_output(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["trace", "--seed", "0", "--index", "0", "--quiet",
             "--out", str(tmp_path / "t.json")]
        )
        assert code == 0
        assert capsys.readouterr().out == ""
        assert (tmp_path / "t.json").exists()

    def test_metrics_exits_1_on_zero_activity(self, capsys, monkeypatch):
        import repro.explore.trial as trial_mod
        from repro.cli import main

        class DeadSession:
            def metrics_snapshot(self):
                return [{"site": 0, "counters": {}, "gauges": {}, "histograms": {}}]

        class Dead:
            session = DeadSession()

        monkeypatch.setattr(
            trial_mod, "run_trial", lambda config, observe=False, subscribers=(): Dead()
        )
        code = main(["metrics"])
        assert code == 1
        assert "zero" in capsys.readouterr().err

    def test_metrics_quiet_still_reports_activity_via_exit_code(self, capsys):
        from repro.cli import main

        code = main(["metrics", "--seed", "0", "--index", "0", "--quiet"])
        assert code == 0
        assert capsys.readouterr().out == ""
