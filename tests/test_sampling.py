"""Head-based trace sampling (repro.obs.sample) and its transport wiring.

The contract under test: the origin decides once per trace id, the
decision is a deterministic pure function (same everywhere, forever),
it rides the frame so receivers agree without local configuration, and
a sampled-out trace costs the sender one counter — no events, no
partial span trees on either side.
"""

import asyncio
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import AbortMsg, CommitMsg, Envelope
from repro.obs.sample import TraceSampler, sample_decision
from repro.transport.tcp import TcpTransport
from repro.vtime import VirtualTime

from tests.test_tcp_transport import two_addrs, wait_for

trace_ids = st.text(min_size=1, max_size=24)
rates = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


# ---------------------------------------------------------------------------
# The pure decision function
# ---------------------------------------------------------------------------


class TestSampleDecision:
    @settings(max_examples=100)
    @given(trace_ids, rates)
    def test_deterministic(self, trace_id, rate):
        assert sample_decision(trace_id, rate) == sample_decision(trace_id, rate)

    @settings(max_examples=100)
    @given(trace_ids, rates, rates)
    def test_monotone_in_rate(self, trace_id, lo, hi):
        # A trace sampled at rate r stays sampled at every rate >= r, so
        # raising the rate only ever *adds* traces — operators can turn
        # the knob without losing the traces they were already following.
        if lo > hi:
            lo, hi = hi, lo
        if sample_decision(trace_id, lo):
            assert sample_decision(trace_id, hi)

    @settings(max_examples=50)
    @given(rates)
    def test_empty_trace_id_always_sampled(self, rate):
        assert sample_decision("", rate) is True

    @settings(max_examples=50)
    @given(trace_ids)
    def test_rate_bounds(self, trace_id):
        assert sample_decision(trace_id, 1.0) is True
        assert sample_decision(trace_id, 0.0) is False

    def test_observed_rate_tracks_configured_rate(self):
        ids = [f"{i}@0" for i in range(20_000)]
        for rate in (0.01, 0.1, 0.5):
            hits = sum(sample_decision(t, rate) for t in ids)
            observed = hits / len(ids)
            # SHA-256 is uniform: 20k Bernoulli trials put the observed
            # rate within ~5 sigma of the configured one.
            sigma = (rate * (1 - rate) / len(ids)) ** 0.5
            assert abs(observed - rate) < 5 * sigma + 1e-9, (rate, observed)

    def test_salt_changes_the_subset_not_the_rate(self):
        ids = [f"{i}@1" for i in range(10_000)]
        plain = {t for t in ids if sample_decision(t, 0.2)}
        salted = {t for t in ids if sample_decision(t, 0.2, salt="run2")}
        assert plain != salted  # different subset ...
        assert abs(len(salted) - len(plain)) < 0.05 * len(ids)  # ... same rate

    @settings(max_examples=100)
    @given(trace_ids, rates)
    def test_sampler_matches_pure_function(self, trace_id, rate):
        assert TraceSampler(rate).sample(trace_id) == sample_decision(trace_id, rate)


class TestTraceSampler:
    def test_rejects_out_of_range_rate(self):
        with pytest.raises(ValueError):
            TraceSampler(-0.1)
        with pytest.raises(ValueError):
            TraceSampler(1.1)

    def test_memo_returns_cached_decision(self):
        sampler = TraceSampler(0.5)
        first = sampler.sample("7@3")
        assert sampler._memo == {"7@3": first}
        assert sampler.sample("7@3") == first

    def test_memo_eviction_keeps_decisions_stable(self):
        sampler = TraceSampler(0.5, memo_size=8)
        decisions = {t: sampler.sample(t) for t in (f"{i}@0" for i in range(50))}
        assert len(sampler._memo) <= 8
        # Eviction must only re-derive, never change, a decision.
        for trace_id, decision in decisions.items():
            assert sampler.sample(trace_id) == decision

    def test_edge_rates_skip_hashing_and_memo(self):
        always = TraceSampler(1.0)
        never = TraceSampler(0.0)
        assert always.sample("x@1") is True
        assert never.sample("x@1") is False
        assert always._memo == {} and never._memo == {}


# ---------------------------------------------------------------------------
# Envelope trace identity (the batched message plane must be sampleable)
# ---------------------------------------------------------------------------


class TestEnvelopeTraceIdentity:
    def test_envelope_takes_first_inner_txn_vt(self):
        env = Envelope(
            (CommitMsg(VirtualTime(5, 1), 12), AbortMsg(VirtualTime(6, 1), 13, "x"))
        )
        assert env.txn_vt == VirtualTime(5, 1)

    def test_envelope_skips_leading_control_messages(self):
        class Control:
            pass

        env = Envelope((Control(), CommitMsg(VirtualTime(9, 2), 3)))
        assert env.txn_vt == VirtualTime(9, 2)

    def test_envelope_of_control_messages_has_no_txn_vt(self):
        assert Envelope(()).txn_vt is None


# ---------------------------------------------------------------------------
# Transport integration over real sockets
# ---------------------------------------------------------------------------


def run_pair(rate, msgs, record_dropped=False, reply=False):
    """Send ``msgs`` a->b with samplers at ``rate`` on both ends."""

    async def main():
        addrs = two_addrs()
        a = TcpTransport(addrs, local_sites={0}, sampler=TraceSampler(rate, record_dropped=record_dropped))
        b = TcpTransport(addrs, local_sites={1}, sampler=TraceSampler(rate, record_dropped=record_dropped))
        a.bus.enable()
        b.bus.enable()
        inbox = []
        a.register(0, lambda src, p: None)
        b.register(1, lambda src, p: inbox.append(p))
        await a.start()
        await b.start()
        for m in msgs:
            a.send(0, 1, m)
        await wait_for(lambda: len(inbox) == len(msgs), what="all frames delivered")
        await a.aquiesce(settle_ms=20.0)
        out = {
            "delivered": list(inbox),
            "a_events": list(a.bus.events),
            "b_events": list(b.bus.events),
            "a_sends_dropped": a.sends_sampled_out,
            "b_deliveries_dropped": b.deliveries_sampled_out,
        }
        await a.stop()
        await b.stop()
        return out

    return asyncio.run(main())


MSGS = [CommitMsg(VirtualTime(i, 0), i) for i in range(40)]


class TestTransportSampling:
    def test_every_message_still_delivered(self):
        # Sampling drops *telemetry*, never payloads.
        out = run_pair(0.0, MSGS)
        assert out["delivered"] == MSGS

    def test_rate_zero_records_nothing_but_counts_drops(self):
        out = run_pair(0.0, MSGS)
        assert [e for e in out["a_events"] if e.kind == "message_sent"] == []
        assert [e for e in out["b_events"] if e.kind == "message_delivered"] == []
        assert out["a_sends_dropped"] == len(MSGS)
        assert out["b_deliveries_dropped"] == len(MSGS)

    def test_rate_one_records_everything(self):
        out = run_pair(1.0, MSGS)
        sends = [e for e in out["a_events"] if e.kind == "message_sent"]
        delivers = [e for e in out["b_events"] if e.kind == "message_delivered"]
        assert len(sends) == len(MSGS)
        assert len(delivers) == len(MSGS)
        assert out["a_sends_dropped"] == 0
        assert out["b_deliveries_dropped"] == 0

    def test_sender_and_receiver_agree_per_trace(self):
        # The in-band flag, not receiver-side hashing, drives the receiver:
        # every recorded trace is complete (send on a, delivery on b) and
        # every dropped trace is absent from both timelines.
        out = run_pair(0.5, MSGS)
        sent_ids = {e.data["msg_id"] for e in out["a_events"] if e.kind == "message_sent"}
        delivered_ids = {
            e.data["msg_id"] for e in out["b_events"] if e.kind == "message_delivered"
        }
        assert sent_ids == delivered_ids
        assert 0 < len(sent_ids) < len(MSGS)
        assert out["a_sends_dropped"] == len(MSGS) - len(sent_ids)
        assert out["b_deliveries_dropped"] == len(MSGS) - len(delivered_ids)

    def test_decision_is_per_transaction_not_per_frame(self):
        # Frames of the same transaction share the trace id, so every
        # frame of a sampled transaction is recorded and every frame of a
        # dropped one is skipped — the merge sees whole span trees only.
        msgs = [CommitMsg(VirtualTime(i // 4, 0), i) for i in range(40)]
        out = run_pair(0.5, msgs)
        sent_traces = {}
        for e in out["a_events"]:
            if e.kind == "message_sent":
                sent_traces.setdefault(str(e.txn_vt), 0)
                sent_traces[str(e.txn_vt)] += 1
        # 10 distinct transactions x 4 frames: recorded ones are complete
        for trace, frames in sent_traces.items():
            assert frames == 4, (trace, frames)
        assert out["a_sends_dropped"] % 4 == 0
        # and the recorded set is exactly what the pure function predicts
        recorded = {e.txn_vt for e in out["a_events"] if e.kind == "message_sent"}
        expected = {
            VirtualTime(i, 0) for i in range(10) if sample_decision(f"{i}@0", 0.5)
        }
        assert recorded == expected

    def test_record_dropped_emits_markers(self):
        out = run_pair(0.0, MSGS, record_dropped=True)
        markers = [e for e in out["a_events"] if e.kind == "message_sent"]
        assert len(markers) == len(MSGS)
        assert all(e.data.get("sampled") is False for e in markers)
        # Receivers still record nothing for dropped traces.
        assert [e for e in out["b_events"] if e.kind == "message_delivered"] == []

    def test_envelopes_are_sampled_by_leading_transaction(self):
        envs = [
            Envelope(tuple(CommitMsg(VirtualTime(i, 0), j) for j in range(4)))
            for i in range(30)
        ]
        out = run_pair(0.5, envs)
        sends = [e for e in out["a_events"] if e.kind == "message_sent"]
        assert 0 < len(sends) < len(envs)
        assert out["a_sends_dropped"] == len(envs) - len(sends)
        # The decision matches the pure function on the leading txn's id.
        sampler = TraceSampler(0.5)
        expected_drops = sum(not sampler.sample(f"{i}@0") for i in range(30))
        assert out["a_sends_dropped"] == expected_drops

    def test_no_sampler_means_no_change(self):
        async def main():
            addrs = two_addrs()
            a = TcpTransport(addrs, local_sites={0})
            b = TcpTransport(addrs, local_sites={1})
            a.bus.enable()
            b.bus.enable()
            inbox = []
            b.register(1, lambda src, p: inbox.append(p))
            await a.start()
            await b.start()
            a.send(0, 1, CommitMsg(VirtualTime(1, 0), 1))
            await wait_for(lambda: inbox, what="delivery")
            assert a.sends_sampled_out == 0
            assert b.deliveries_sampled_out == 0
            assert [e.kind for e in a.bus.events if e.kind == "message_sent"]
            await a.stop()
            await b.stop()

        asyncio.run(main())
