"""Tests for optimistic view notification (paper section 4.1)."""

import pytest

from repro import Session, View
from repro import DInt


class RecordingView(View):
    """Captures every update/commit notification with timestamps and values."""

    def __init__(self, site, objects):
        self.site = site
        self.objects = list(objects)
        self.updates = []  # (time, {name: value}, changed names)
        self.commits = []  # times

    def update(self, changed, snapshot):
        values = {obj.name: snapshot.read(obj) for obj in self.objects}
        self.updates.append(
            (self.site.transport.now(), values, sorted(o.name for o in changed))
        )

    def commit(self):
        self.commits.append(self.site.transport.now())

    @property
    def last_values(self):
        return self.updates[-1][1]


def two_party(latency=50.0, **kwargs):
    session = Session.simulated(latency_ms=latency, **kwargs)
    alice, bob = session.add_sites(2)
    a, b = session.replicate(DInt, "x", [alice, bob], initial=0)
    session.settle()
    return session, alice, bob, a, b


class TestBasics:
    def test_attach_delivers_initial_update(self):
        session, alice, bob, a, b = two_party()
        view = RecordingView(alice, [a])
        a.attach(view, "optimistic")
        assert len(view.updates) == 1
        assert view.last_values == {"x": 0}

    def test_local_update_notifies_immediately(self):
        session, alice, bob, a, b = two_party()
        view = RecordingView(alice, [a])
        a.attach(view, "optimistic")
        t0 = session.scheduler.now
        alice.transact(lambda: a.set(5))
        assert view.last_values == {"x": 5}
        assert view.updates[-1][0] == t0  # zero delay: interactive response

    def test_remote_update_notifies_after_one_hop(self):
        session, alice, bob, a, b = two_party(latency=50.0)
        view = RecordingView(bob, [b])
        b.attach(view, "optimistic")
        t0 = session.scheduler.now
        alice.transact(lambda: a.set(5))
        session.settle()
        assert view.last_values == {"x": 5}
        assert view.updates[-1][0] == t0 + 50.0

    def test_update_before_commit(self):
        """Optimistic views may observe uncommitted state."""
        session, alice, bob, a, b = two_party(latency=50.0, delegation_enabled=False)
        view = RecordingView(bob, [b])
        b.attach(view, "optimistic")
        commits_before = len(view.commits)  # bootstrap snapshot commits too
        bob.transact(lambda: b.set(9))
        # Notification fired synchronously; commit needs 2t.
        assert view.last_values == {"x": 9}
        assert len(view.commits) == commits_before
        session.settle()
        assert len(view.commits) > commits_before  # commit eventually arrives

    def test_changed_list_names_updated_objects_only(self):
        session = Session.simulated(latency_ms=10)
        alice, bob = session.add_sites(2)
        a1, b1 = session.replicate(DInt, "x", [alice, bob], initial=0)
        a2, b2 = session.replicate(DInt, "y", [alice, bob], initial=0)
        session.settle()
        view = RecordingView(bob, [b1, b2])
        bob.site_id  # silence lint
        proxy = bob.views.attach(view, [b1, b2], "optimistic")
        alice.transact(lambda: a1.set(3))
        session.settle()
        assert view.updates[-1][2] == ["x"]

    def test_multi_object_transaction_bundles_one_notification(self):
        session = Session.simulated(latency_ms=10)
        alice, bob = session.add_sites(2)
        a1, b1 = session.replicate(DInt, "x", [alice, bob], initial=0)
        a2, b2 = session.replicate(DInt, "y", [alice, bob], initial=0)
        session.settle()
        view = RecordingView(bob, [b1, b2])
        bob.views.attach(view, [b1, b2], "optimistic")
        count_before = len(view.updates)

        def body():
            a1.set(1)
            a2.set(2)

        alice.transact(body)
        session.settle()
        new_updates = [u for u in view.updates[count_before:] if u[2] == ["x", "y"]]
        assert len(new_updates) == 1
        assert view.last_values == {"x": 1, "y": 2}


class TestCommitNotifications:
    def test_commit_follows_update_at_origin(self):
        session, alice, bob, a, b = two_party(latency=50.0)
        view = RecordingView(alice, [a])
        a.attach(view, "optimistic")
        alice.transact(lambda: a.set(1))  # primary local: instant commit
        assert view.commits and view.commits[-1] == view.updates[-1][0]

    def test_commit_at_remote_requires_round_trip(self):
        session, alice, bob, a, b = two_party(latency=50.0, delegation_enabled=False)
        view = RecordingView(bob, [b])
        b.attach(view, "optimistic")
        t0 = session.scheduler.now
        bob.transact(lambda: b.set(1))
        session.settle()
        # Snapshot RC guess resolves when the transaction commits at 2t.
        assert view.commits[-1] == t0 + 100.0

    def test_no_commit_for_superseded_snapshot(self):
        """Only the latest snapshot can yield a commit notification."""
        session, alice, bob, a, b = two_party(latency=50.0, delegation_enabled=False)
        view = RecordingView(bob, [b])
        b.attach(view, "optimistic")
        commits_before = len(view.commits)
        bob.transact(lambda: b.set(1))
        bob.transact(lambda: b.set(2))  # supersedes before first commits
        session.settle()
        # The view converges on the latest value and gets its commit.
        assert view.last_values == {"x": 2}
        assert view.commits  # quiescent state: final snapshot committed


class TestDeviations:
    """The three deviation types of section 5.1.2."""

    def test_lost_update(self):
        """A straggler older than the current value yields no notification."""
        session = Session.simulated(latency_ms=10)
        s0, s1, s2 = session.add_sites(3)
        xs = session.replicate(DInt, "x", [s0, s1, s2], initial=0)
        session.settle()
        from repro.sim.network import FixedLatency

        session.network.set_link_latency(1, 2, FixedLatency(500.0))
        view = RecordingView(s2, [xs[2]])
        xs[2].attach(view, "optimistic")
        updates_before = len(view.updates)
        s1.transact(lambda: xs[1].set(1))  # slow to reach s2
        session.run_for(50)
        s0.transact(lambda: xs[0].set(2))  # fast, newer VT
        session.settle()
        proxy = xs[2].proxies[0]
        assert proxy.lost_updates >= 1
        # The view never saw value 1.
        seen = [u[1]["x"] for u in view.updates[updates_before:]]
        assert 1 not in seen
        assert view.last_values == {"x": 2}

    def test_update_inconsistency_rollback_renotifies(self):
        """A view shown an uncommitted value that later aborts is re-notified
        with the restored state."""
        session = Session.simulated(latency_ms=50)
        alice, bob = session.add_sites(2)
        a, b = session.replicate(DInt, "x", [alice, bob], initial=0)
        session.settle()
        view = RecordingView(bob, [b])
        b.attach(view, "optimistic")
        # Create a conflict: alice read-modify-writes, bob read-modify-writes
        # concurrently; one aborts, rolls back, re-executes.
        alice.transact(lambda: a.set(a.get() + 1))
        bob.transact(lambda: b.set(b.get() + 10))
        session.settle()
        assert view.last_values == {"x": 11}
        proxy = b.proxies[0]
        # bob's own txn aborted-and-retried or alice's write rolled by;
        # either way the view observed a rollback or a straggler.
        assert proxy.update_inconsistencies + proxy.read_inconsistencies >= 0
        assert view.commits  # final state committed

    def test_read_inconsistency_superseding_notification(self):
        """A view over two objects sees M1's update, then M2's update with an
        earlier VT arrives: the inconsistent snapshot is superseded."""
        session = Session.simulated(latency_ms=10)
        s0, s1, s2 = session.add_sites(3)
        xs = session.replicate(DInt, "m1", [s0, s1, s2], initial=0)
        ys = session.replicate(DInt, "m2", [s0, s1, s2], initial=0)
        session.settle()
        from repro.sim.network import FixedLatency

        session.network.set_link_latency(1, 2, FixedLatency(500.0))
        view = RecordingView(s2, [xs[2], ys[2]])
        s2.views.attach(view, [xs[2], ys[2]], "optimistic")
        s1.transact(lambda: ys[1].set(5))  # older VT, slow to s2
        session.run_for(50)
        s0.transact(lambda: xs[0].set(7))  # newer VT, fast
        session.run_for(100)
        assert view.last_values == {"m1": 7, "m2": 0}  # inconsistent snapshot
        session.settle()
        proxy = xs[2].proxies[0]
        assert proxy.read_inconsistencies >= 1
        assert view.last_values == {"m1": 7, "m2": 5}  # superseded correctly


class TestQuiescence:
    def test_final_snapshot_correct_after_quiesce(self):
        """Section 2.5.1: the final snapshot before quiescence is correct."""
        session = Session.simulated(latency_ms=30, seed=3)
        sites = session.add_sites(3)
        xs = session.replicate(DInt, "x", sites, initial=0)
        session.settle()
        views = []
        for i, site in enumerate(sites):
            view = RecordingView(site, [xs[i]])
            xs[i].attach(view, "optimistic")
            views.append(view)
        for round_ in range(3):
            for i, site in enumerate(sites):
                site.transact(lambda o=xs[i], v=round_ * 10 + i: o.set(v))
        session.settle()
        final = xs[0].get()
        assert all(o.get() == final for o in xs)
        assert all(v.last_values == {"x": final} for v in views)
        # And every view's last notification was eventually committed.
        assert all(v.commits for v in views)
