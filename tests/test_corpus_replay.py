"""Regression corpus: every checked-in violation artifact must replay
byte-identically.

``tests/corpus/`` holds known violations found by the randomized campaign
explorer (``repro-explore/1``) and the bounded-exhaustive model checker
(``repro-mc/1``), one per protocol-mutation canary.  Each test re-runs the
artifact's embedded config (and, for MC artifacts, its exact event
schedule) and requires the regenerated artifact to match the stored bytes.
A mismatch means determinism broke — replay no longer reproduces what the
explorer saw — or the protocol's behavior changed under a schedule that is
pinned as evidence.  Regenerate deliberately with
``scripts/make_corpus.py``.
"""

import json
import os

import pytest

from repro.explore import replay_artifact, replay_mc_artifact
from repro.explore.campaign import ARTIFACT_FORMAT
from repro.explore.mc import MC_ARTIFACT_FORMAT

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS_FILES = sorted(
    name for name in os.listdir(CORPUS_DIR) if name.endswith(".json")
)


def test_corpus_is_present():
    # Both explorers contribute one artifact per mutation canary; an empty
    # corpus directory means the checked-in evidence went missing.
    assert len(CORPUS_FILES) >= 6


@pytest.mark.parametrize("name", CORPUS_FILES)
def test_corpus_artifact_replays_byte_identically(name):
    with open(os.path.join(CORPUS_DIR, name)) as fh:
        artifact = json.load(fh)

    fmt = artifact["format"]
    if fmt == ARTIFACT_FORMAT:
        regenerated, identical = replay_artifact(artifact)
    elif fmt == MC_ARTIFACT_FORMAT:
        regenerated, identical = replay_mc_artifact(artifact)
    else:
        pytest.fail(f"{name}: unknown artifact format {fmt!r}")

    assert identical, f"{name}: replay diverged from checked-in artifact"
    # The corpus pins *violations*: a replay that comes back clean means
    # the artifact no longer demonstrates anything.
    assert regenerated["violations"], f"{name}: replay produced no violations"
