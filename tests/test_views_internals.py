"""Unit tests for view-notification internals: snapshots, subtree helpers,
deferred checks, retention floors, and GC interaction."""

import pytest

from repro import Session, View
from repro.core.views import (
    Snapshot,
    blocking_subtree_reservation,
    subtree_has_entry_in_interval,
    subtree_uncommitted_in_interval,
    subtree_uncommitted_upto,
)
from repro.vtime import VT_ZERO, VirtualTime
from repro import DInt, DList


def vt(counter, site=0):
    return VirtualTime(counter, site)


class Recorder(View):
    def __init__(self):
        self.values = []
        self.commit_count = 0

    def update(self, changed, snapshot):
        self.values.append([snapshot.read(c) for c in changed])

    def commit(self):
        self.commit_count += 1


@pytest.fixture()
def site():
    return Session().add_site("app")


class TestSnapshotObject:
    def test_read_scalar_at_ts(self, site):
        x = site.create_int("x", 1)
        site.transact(lambda: x.set(2))
        snap = Snapshot(ts=x.current_value_vt(), committed_only=False)
        assert snap.read(x) == 2

    def test_committed_only_read(self, site):
        x = site.create_int("x", 1)
        x.history.insert(vt(100, 9), 99, committed=False)  # fake remote value
        optimistic = Snapshot(ts=vt(200, 9), committed_only=False)
        pessimistic = Snapshot(ts=vt(200, 9), committed_only=True)
        assert optimistic.read(x) == 99
        assert pessimistic.read(x) == 1


class TestSubtreeHelpers:
    def test_scalar_interval_query(self, site):
        x = site.create_int("x", 0)
        x.history.insert(vt(10, 9), 1, committed=True)
        assert subtree_has_entry_in_interval(x, vt(5), vt(15), committed_only=True)
        assert not subtree_has_entry_in_interval(x, vt(10, 9), vt(15), committed_only=True)

    def test_composite_subtree_query(self, site):
        lst = site.create_list("l")
        holder = []
        site.transact(lambda: holder.append(lst.append("int", 1)))
        child = holder[0]
        write_vt = child.history.current().vt
        lo = VT_ZERO
        hi = vt(write_vt.counter + 10, 0)
        assert subtree_has_entry_in_interval(lst, lo, hi, committed_only=False)

    def test_uncommitted_collection(self, site):
        x = site.create_int("x", 0)
        x.history.insert(vt(10, 9), 1, committed=False)
        x.history.insert(vt(20, 9), 2, committed=False)
        assert set(subtree_uncommitted_in_interval(x, vt(5), vt(15))) == {vt(10, 9)}
        assert set(subtree_uncommitted_upto(x, vt(25, 9))) == {vt(10, 9), vt(20, 9)}

    def test_blocking_subtree_reservation_walks_ancestors(self, site):
        lst = site.create_list("l")
        holder = []
        site.transact(lambda: holder.append(lst.append("int", 1)))
        child = holder[0]
        lst.subtree_reservations.reserve(vt(1), vt(100), owner=("snap", 0, 1))
        assert blocking_subtree_reservation(child, vt(50)) is not None
        assert blocking_subtree_reservation(child, vt(100)) is None


class TestRetentionFloor:
    def test_no_proxies_no_floor(self, site):
        x = site.create_int("x")
        assert site.views.retention_floor(x) is None

    def test_pessimistic_proxy_sets_floor(self):
        session = Session.simulated(latency_ms=50, delegation_enabled=False)
        alice, bob = session.add_sites(2)
        a, b = session.replicate(DInt, "x", [alice, bob], initial=0)
        session.settle()
        rec = Recorder()
        a.attach(rec, "pessimistic")
        floor_before = alice.views.retention_floor(a)
        assert floor_before is not None
        # An in-flight update creates a pending snapshot; the floor must not
        # exceed its ts so the history version it reads survives GC.
        bob.transact(lambda: b.set(5))
        session.run_for(60)  # applied at alice, not yet committed
        floor = alice.views.retention_floor(a)
        assert floor is not None
        assert floor <= a.history.current().vt

    def test_optimistic_proxy_does_not_pin_history(self, site):
        x = site.create_int("x")
        rec = Recorder()
        x.attach(rec, "optimistic")
        assert site.views.retention_floor(x) is None


class TestChangedLists:
    def test_incremental_changed_only(self):
        """Notifications list exactly the objects changed since the last
        notification (paper section 2.5)."""
        session = Session.simulated(latency_ms=10)
        alice, bob = session.add_sites(2)
        xs = session.replicate(DInt, "x", [alice, bob], initial=0)
        ys = session.replicate(DInt, "y", [alice, bob], initial=0)
        session.settle()

        class Named(View):
            def __init__(self):
                self.changed_names = []

            def update(self, changed, snapshot):
                self.changed_names.append(sorted(c.name for c in changed))

        view = Named()
        bob.views.attach(view, [xs[1], ys[1]], "optimistic")
        alice.transact(lambda: xs[0].set(1))
        session.settle()
        alice.transact(lambda: ys[0].set(1))
        session.settle()
        assert view.changed_names[-2:] == [["x"], ["y"]]

    def test_composite_event_maps_to_attached_ancestor(self):
        session = Session.simulated(latency_ms=10)
        alice, bob = session.add_sites(2)
        lists = session.replicate(DList, "l", [alice, bob])
        session.settle()
        alice.transact(lambda: lists[0].append("int", 7))
        session.settle()

        class Named(View):
            def __init__(self):
                self.changed_names = []

            def update(self, changed, snapshot):
                self.changed_names.append([c.name for c in changed])

        view = Named()
        lists[1].attach(view, "optimistic")
        # Edit the embedded child; the view attached to the ROOT must be
        # notified with the root in the changed list.
        alice.transact(lambda: lists[0].child_at(0).set(8))
        session.settle()
        assert ["l"] in view.changed_names[1:]


class TestDeferredChecks:
    def test_pessimistic_check_defers_on_uncommitted_interval(self):
        """A pessimistic RL check whose interval contains an uncommitted
        value waits for it to resolve instead of answering."""
        session = Session.simulated(latency_ms=50, delegation_enabled=False)
        s0, s1, s2 = session.add_sites(3)
        objs = session.replicate(DInt, "x", [s0, s1, s2], initial=0)
        session.settle()
        rec = Recorder()
        objs[2].attach(rec, "pessimistic")
        values_before = len(rec.values)
        # Two updates in quick succession: the second snapshot's interval
        # contains the first (uncommitted) update at the primary.
        s1.transact(lambda: objs[1].set(1))
        s1.transact(lambda: objs[1].set(2))
        session.settle()
        seen = [v[0] for v in rec.values[values_before:]]
        assert seen == [1, 2]  # lossless, in order, committed only


class TestOptimisticSupersede:
    def test_only_latest_snapshot_outstanding(self):
        session = Session.simulated(latency_ms=80, delegation_enabled=False)
        alice, bob = session.add_sites(2)
        a, b = session.replicate(DInt, "x", [alice, bob], initial=0)
        session.settle()
        rec = Recorder()
        b.attach(rec, "optimistic")
        commits_before = rec.commit_count
        bob.transact(lambda: b.set(1))
        bob.transact(lambda: b.set(2))
        bob.transact(lambda: b.set(3))
        # Three rapid updates: at most one uncommitted snapshot is kept, so
        # intermediate snapshots never produce commit notifications.
        session.settle()
        new_commits = rec.commit_count - commits_before
        assert new_commits == 1
        assert rec.values[-1] == [3]
