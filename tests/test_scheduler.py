"""Tests for the discrete-event scheduler."""

import pytest

from repro.errors import SimulationError
from repro.sim import Scheduler


class TestScheduler:
    def test_events_fire_in_time_order(self):
        sched = Scheduler()
        log = []
        sched.call_later(30, lambda: log.append("c"))
        sched.call_later(10, lambda: log.append("a"))
        sched.call_later(20, lambda: log.append("b"))
        sched.run_until_quiescent()
        assert log == ["a", "b", "c"]
        assert sched.now == 30

    def test_ties_fire_in_insertion_order(self):
        sched = Scheduler()
        log = []
        for i in range(5):
            sched.call_later(10, lambda i=i: log.append(i))
        sched.run_until_quiescent()
        assert log == [0, 1, 2, 3, 4]

    def test_run_until_respects_deadline(self):
        sched = Scheduler()
        log = []
        sched.call_later(10, lambda: log.append("early"))
        sched.call_later(100, lambda: log.append("late"))
        sched.run(until=50)
        assert log == ["early"]
        assert sched.now == 50
        sched.run_until_quiescent()
        assert log == ["early", "late"]

    def test_events_can_schedule_events(self):
        sched = Scheduler()
        log = []

        def first():
            log.append(("first", sched.now))
            sched.call_later(5, lambda: log.append(("second", sched.now)))

        sched.call_later(10, first)
        sched.run_until_quiescent()
        assert log == [("first", 10), ("second", 15)]

    def test_cancelled_events_are_skipped(self):
        sched = Scheduler()
        log = []
        event = sched.call_later(10, lambda: log.append("x"))
        event.cancel()
        sched.call_later(20, lambda: log.append("y"))
        assert sched.pending() == 1
        sched.run_until_quiescent()
        assert log == ["y"]

    def test_step_single_event(self):
        sched = Scheduler()
        log = []
        sched.call_later(1, lambda: log.append(1))
        sched.call_later(2, lambda: log.append(2))
        assert sched.step() is True
        assert log == [1]
        assert sched.step() is True
        assert sched.step() is False

    def test_cannot_schedule_in_past(self):
        sched = Scheduler()
        sched.advance_to(100)
        with pytest.raises(SimulationError):
            sched.call_at(50, lambda: None)
        with pytest.raises(SimulationError):
            sched.call_later(-1, lambda: None)

    def test_advance_to_cannot_go_backwards(self):
        sched = Scheduler()
        sched.advance_to(10)
        with pytest.raises(SimulationError):
            sched.advance_to(5)

    def test_max_events_guard(self):
        sched = Scheduler()

        def loop():
            sched.call_later(1, loop)

        sched.call_later(0, loop)
        with pytest.raises(SimulationError):
            sched.run(max_events=100)

    def test_run_until_advances_clock_even_when_idle(self):
        sched = Scheduler()
        sched.run(until=500)
        assert sched.now == 500

    def test_events_processed_counter(self):
        sched = Scheduler()
        for i in range(7):
            sched.call_later(i, lambda: None)
        sched.run_until_quiescent()
        assert sched.events_processed == 7

    def test_pending_is_counter_not_sweep(self):
        sched = Scheduler()
        events = [sched.call_later(i, lambda: None) for i in range(10)]
        assert sched.pending() == 10
        events[3].cancel()
        events[7].cancel()
        assert sched.pending() == 8
        sched.step()
        assert sched.pending() == 7

    def test_double_cancel_counts_once(self):
        sched = Scheduler()
        event = sched.call_later(5, lambda: None)
        sched.call_later(6, lambda: None)
        event.cancel()
        event.cancel()
        assert sched.pending() == 1

    def test_cancel_after_firing_is_harmless(self):
        sched = Scheduler()
        fired = []
        event = sched.call_later(1, lambda: fired.append(1))
        sched.call_later(2, lambda: event.cancel())
        sched.call_later(3, lambda: fired.append(3))
        sched.run_until_quiescent()
        assert fired == [1, 3]
        assert sched.pending() == 0

    def test_heavy_cancellation_compacts_heap(self):
        sched = Scheduler()
        events = [sched.call_later(i, lambda: None) for i in range(1000)]
        for event in events[:900]:
            event.cancel()
        # Compaction purges cancelled entries once they exceed half the heap.
        assert len(sched._queue) <= 200
        assert sched.pending() == 100
        sched.run_until_quiescent()
        assert sched.events_processed == 100

    def test_cancellation_churn_preserves_order(self):
        sched = Scheduler()
        log = []
        keep = []
        for i in range(500):
            event = sched.call_later(500 - i, lambda i=i: log.append(i))
            if i % 5 != 0:
                event.cancel()
            else:
                keep.append(i)
        sched.run_until_quiescent()
        # Survivors fire in time order: larger i was scheduled earlier... the
        # delay is 500 - i, so ascending time order is descending i.
        assert log == sorted(keep, reverse=True)

    def test_run_not_reentrant(self):
        sched = Scheduler()
        errors = []

        def inner():
            try:
                sched.run()
            except SimulationError as exc:
                errors.append(exc)

        sched.call_later(1, inner)
        sched.run_until_quiescent()
        assert len(errors) == 1
