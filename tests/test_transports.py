"""Tests for the transport abstraction: memory, sim, and asyncio."""

import asyncio

import pytest

from repro.errors import TransportError
from repro.sim import FixedLatency, Network, Scheduler
from repro.transport import AsyncioTransport, MemoryTransport, SimTransport


class TestMemoryTransport:
    def test_synchronous_delivery(self):
        transport = MemoryTransport()
        inbox = []
        transport.register(1, lambda src, p: inbox.append((src, p)))
        transport.send(0, 1, "hi")
        assert inbox == [(0, "hi")]

    def test_handler_can_send_without_recursion(self):
        transport = MemoryTransport()
        log = []

        def ping(src, payload):
            log.append(payload)
            if payload < 1000:
                transport.send(1, 1, payload + 1)

        transport.register(1, ping)
        transport.send(0, 1, 0)  # would blow the stack if recursive
        assert len(log) == 1001

    def test_manual_drain_mode(self):
        transport = MemoryTransport(auto_drain=False)
        inbox = []
        transport.register(1, lambda src, p: inbox.append(p))
        transport.send(0, 1, "a")
        transport.send(0, 1, "b")
        assert inbox == []
        assert transport.drain() == 2
        assert inbox == ["a", "b"]

    def test_unknown_destination(self):
        transport = MemoryTransport()
        with pytest.raises(TransportError):
            transport.send(0, 9, "?")

    def test_fail_site_blocks_traffic_and_notifies(self):
        transport = MemoryTransport()
        inbox, notices = [], []
        transport.register(1, lambda src, p: inbox.append(p))
        transport.register(2, lambda src, p: inbox.append(p))
        transport.add_failure_listener(notices.append)
        transport.fail_site(1)
        transport.send(0, 1, "lost")
        transport.send(1, 2, "also lost")
        assert inbox == []
        assert notices == [1]

    def test_clock_advance(self):
        transport = MemoryTransport()
        assert transport.now() == 0.0
        transport.advance(12.5)
        assert transport.now() == 12.5


class TestSimTransport:
    def test_wraps_network(self):
        sched = Scheduler()
        net = Network(sched, latency=FixedLatency(30.0))
        transport = SimTransport(net)
        inbox = []
        transport.register(1, lambda src, p: inbox.append((p, sched.now)))
        transport.send(0, 1, "x")
        sched.run_until_quiescent()
        assert inbox == [("x", 30.0)]
        assert transport.now() == 30.0

    def test_defer_schedules_on_scheduler(self):
        sched = Scheduler()
        transport = SimTransport(Network(sched))
        log = []
        transport.defer(lambda: log.append(sched.now))
        assert log == []
        sched.run_until_quiescent()
        assert log == [0.0]

    def test_failure_listener_via_network(self):
        sched = Scheduler()
        net = Network(sched)
        transport = SimTransport(net)
        transport.register(0, lambda s, p: None)
        transport.register(1, lambda s, p: None)
        notices = []
        transport.add_failure_listener(notices.append)
        net.fail_site(1)
        sched.run_until_quiescent()
        assert notices == [1]


class TestAsyncioTransport:
    def test_delivery(self):
        async def main():
            transport = AsyncioTransport()
            inbox = []
            transport.register(1, lambda src, p: inbox.append((src, p)))
            await transport.start()
            transport.send(0, 1, "hello")
            await transport.aquiesce(settle_ms=5)
            await transport.stop()
            return inbox

        assert asyncio.run(main()) == [(0, "hello")]

    def test_delay(self):
        async def main():
            transport = AsyncioTransport(delay_ms=30.0)
            times = []
            transport.register(1, lambda src, p: times.append(transport.now()))
            await transport.start()
            start = transport.now()
            transport.send(0, 1, "x")
            await transport.aquiesce(settle_ms=5)
            await transport.stop()
            return times[0] - start

        elapsed = asyncio.run(main())
        assert elapsed >= 25.0

    def test_failed_site_dropped(self):
        async def main():
            transport = AsyncioTransport()
            inbox, notices = [], []
            transport.register(1, lambda src, p: inbox.append(p))
            transport.add_failure_listener(notices.append)
            await transport.start()
            transport.fail_site(1)
            transport.send(0, 1, "lost")
            await transport.aquiesce(settle_ms=5)
            await transport.stop()
            return inbox, notices

        inbox, notices = asyncio.run(main())
        assert inbox == []
        assert notices == [1]

    def test_unknown_destination(self):
        transport = AsyncioTransport()
        with pytest.raises(TransportError):
            transport.send(0, 3, "?")
