"""Regression tests: failure of the commit DELEGATE (paper section 3.4).

With delegated commit, the single remote primary holds the commit
decision.  If it crashes, the originating site must NOT abort unilaterally
— the delegate may have broadcast COMMIT to some sites before dying.  The
origin polls the survivors ("determine if any of them received a commit
message"): commit everywhere if anyone logged it, abort-and-retry
otherwise.  Discovered by the randomized WAN soak test.
"""

import pytest

from repro import Session
from repro.sim.network import FixedLatency
from repro import DInt


def build(latency=30.0):
    session = Session.simulated(latency_ms=latency)
    sites = session.add_sites(4)
    objs = session.replicate(DInt, "x", sites, initial=0)
    session.settle()
    # Primary (and hence delegate for remote origins) is site 0.
    assert objs[1].primary_site() == 0
    return session, sites, objs


class TestDelegateCommittedBeforeFailure:
    def test_commit_wins_if_any_survivor_logged_it(self):
        """The delegate commits and broadcasts, reaches some survivors, then
        an unrelated replica failure triggers the origin's failure handling
        while the origin's own COMMIT is still in flight."""
        session, sites, objs = build()
        # Slow the delegate->origin commit so the origin is still DELEGATED
        # when the failure notification lands.
        session.network.set_link_latency(0, 3, FixedLatency(500.0))
        out = sites[3].transact(lambda: objs[3].set(9))
        session.run_for(70)  # delegate (site 0) committed and broadcast
        assert sites[1].engine.status.get(out.vt) == "committed"
        assert not out.committed  # origin hasn't heard yet
        # Now the DELEGATE fails before the origin's commit arrives.
        session.network.fail_site(0)
        session.settle()
        # Resolution: survivors 1/2 logged the commit -> committed.
        assert out.committed
        assert [objs[i].get() for i in (1, 2, 3)] == [9, 9, 9]
        assert all(
            sites[i].engine.status.get(out.vt) == "committed" for i in (1, 2, 3)
        )

    def test_unrelated_replica_failure_does_not_abort_delegated_txn(self):
        """The soak-test race: a plain replica (not the delegate) fails
        while a delegated transaction is in flight; the transaction must
        commit exactly once, never abort-after-commit."""
        session, sites, objs = build()
        session.network.set_link_latency(0, 3, FixedLatency(120.0))
        out = sites[3].transact(lambda: objs[3].set(7))
        session.run_for(40)  # delegate has committed; commit msg in flight
        session.network.fail_site(2)  # unrelated replica
        session.settle()
        assert out.committed
        assert out.attempts == 1  # no spurious retry
        assert objs[1].get() == objs[3].get() == 7


class TestDelegateDiedBeforeDeciding:
    def test_abort_and_retry_when_no_commit_logged(self):
        """The delegate crashes before its decision reaches anyone: every
        survivor rolls back and the origin re-executes after graph repair."""
        session, sites, objs = build()
        # The delegate's outgoing links are dead: its decision (if any)
        # never leaves.
        for dst in (1, 2, 3):
            session.network.set_link_latency(0, dst, FixedLatency(1_000_000.0))
        out = sites[3].transact(lambda: objs[3].set(5))
        session.run_for(80)  # writes delivered; no commits anywhere
        assert not out.committed
        session.network.fail_site(0)
        session.settle()
        assert out.committed  # re-executed under the new primary
        assert out.attempts >= 2
        assert objs[1].get() == objs[2].get() == objs[3].get() == 5

    def test_value_applied_exactly_once_after_retry(self):
        """The retried transaction must not double-apply on sites that had
        the aborted optimistic write."""
        session, sites, objs = build()
        for dst in (1, 2, 3):
            session.network.set_link_latency(0, dst, FixedLatency(1_000_000.0))
        out = sites[3].transact(lambda: objs[3].set(objs[3].get() + 10))
        session.run_for(80)
        session.network.fail_site(0)
        session.settle()
        assert out.committed
        assert [objs[i].get() for i in (1, 2, 3)] == [10, 10, 10]
