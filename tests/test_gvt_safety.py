"""Safety tests for the GVT baseline: commitment is stable.

The token-sweep commit rule must be safe: once a site considers an update
committed (its counter below the local GVT), no later-arriving straggler
may carry a counter at or below that bound — clocks are monotone and the
token's round minimum bounds all in-flight sends.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import GvtSystem


@settings(max_examples=20, deadline=None)
@given(
    script=st.lists(
        st.tuples(st.integers(0, 3), st.floats(0.0, 300.0)), min_size=1, max_size=25
    ),
    seed=st.integers(0, 9),
)
def test_committed_prefix_is_stable(script, seed):
    system = GvtSystem(n_sites=4, latency_ms=25.0, seed=seed)
    committed_history = {s: [] for s in range(4)}

    def snapshot_committed():
        for s in range(4):
            committed_history[s].append(system.committed_value_at(s))

    for i, (site, gap) in enumerate(script):
        system.issue_update(site, f"v{i}")
        system.run_for(gap)
        snapshot_committed()
    system.run_for(4 * 25.0 * 10 + 2000)
    snapshot_committed()

    # Every site's committed value converges to the same final value...
    finals = {system.committed_value_at(s) for s in range(4)}
    assert len(finals) == 1
    # ...and at quiescence the committed value equals the optimistic one.
    assert system.committed_value_at(0) == system.value_at(0)


def test_gvt_rounds_progress():
    system = GvtSystem(n_sites=5, latency_ms=10.0)
    system.run_for(2000)
    assert system.rounds_completed >= 2000 / (5 * 10.0) - 2


def test_commit_monotone_per_probe():
    """A probe's committed_ms at each site is at least its visible_ms."""
    system = GvtSystem(n_sites=3, latency_ms=20.0)
    system.run_for(500)
    probe = system.issue_update(1, "x")
    system.run_for(5000)
    for site, committed_at in probe.committed_ms.items():
        assert committed_at >= probe.visible_ms[site]
