"""Unit and property tests for value histories."""

import pytest
from hypothesis import given, strategies as st

from repro.core.history import ValueHistory
from repro.errors import ProtocolError
from repro.vtime import VT_ZERO, VirtualTime


def vt(counter, site=0):
    return VirtualTime(counter, site)


class TestBasics:
    def test_initial_entry_is_committed_current(self):
        history = ValueHistory(42)
        assert history.current().value == 42
        assert history.current().committed
        assert history.committed_current().vt == VT_ZERO

    def test_insert_sorted(self):
        history = ValueHistory(0)
        history.insert(vt(20), "b")
        history.insert(vt(10), "a")  # straggler
        history.insert(vt(30), "c")
        assert [e.vt.counter for e in history] == [0, 10, 20, 30]
        assert history.current().value == "c"

    def test_duplicate_vt_rejected(self):
        history = ValueHistory(0)
        history.insert(vt(10), "a")
        with pytest.raises(ProtocolError):
            history.insert(vt(10), "b")

    def test_read_at(self):
        history = ValueHistory("base")
        history.insert(vt(10), "ten")
        history.insert(vt(20), "twenty")
        assert history.read_at(vt(5)).value == "base"
        assert history.read_at(vt(10)).value == "ten"
        assert history.read_at(vt(15)).value == "ten"
        assert history.read_at(vt(99)).value == "twenty"

    def test_committed_read_at_skips_uncommitted(self):
        history = ValueHistory("base")
        history.insert(vt(10), "ten", committed=True)
        history.insert(vt(20), "twenty", committed=False)
        assert history.committed_read_at(vt(25)).value == "ten"
        history.commit(vt(20))
        assert history.committed_read_at(vt(25)).value == "twenty"

    def test_entry_at(self):
        history = ValueHistory(0)
        history.insert(vt(10), 1)
        assert history.entry_at(vt(10)).value == 1
        assert history.entry_at(vt(11)) is None

    def test_set_value_at_overwrites_same_txn(self):
        history = ValueHistory(0)
        history.insert(vt(10), 1)
        history.set_value_at(vt(10), 2)
        assert history.entry_at(vt(10)).value == 2
        with pytest.raises(ProtocolError):
            history.set_value_at(vt(11), 3)


class TestIntervalQueries:
    def test_entries_in_open_interval(self):
        history = ValueHistory(0)
        for counter in (10, 20, 30):
            history.insert(vt(counter), counter)
        found = history.entries_in_open_interval(vt(10), vt(30))
        assert [e.vt.counter for e in found] == [20]

    def test_open_interval_excludes_endpoints(self):
        history = ValueHistory(0)
        history.insert(vt(10), "x")
        assert history.entries_in_open_interval(vt(10), vt(20)) == []
        assert history.entries_in_open_interval(vt(5), vt(10)) == []
        assert len(history.entries_in_open_interval(vt(5), vt(15))) == 1

    def test_committed_only_filter(self):
        history = ValueHistory(0)
        history.insert(vt(10), "u", committed=False)
        assert history.entries_in_open_interval(vt(0), vt(99), committed_only=True) == []
        assert len(history.entries_in_open_interval(vt(0), vt(99))) == 1

    def test_has_uncommitted_in_open_interval(self):
        history = ValueHistory(0)
        history.insert(vt(10), "u", committed=False)
        assert history.has_uncommitted_in_open_interval(vt(0), vt(20))
        history.commit(vt(10))
        assert not history.has_uncommitted_in_open_interval(vt(0), vt(20))


class TestCommitAbortGC:
    def test_commit_marks_entry(self):
        history = ValueHistory(0)
        history.insert(vt(10), 1)
        assert history.commit(vt(10)) is True
        assert history.entry_at(vt(10)).committed
        assert history.commit(vt(11)) is False

    def test_purge_removes_aborted(self):
        history = ValueHistory(0)
        history.insert(vt(10), 1)
        assert history.purge(vt(10)) is True
        assert history.entry_at(vt(10)) is None
        assert history.current().value == 0
        assert history.purge(vt(10)) is False

    def test_cannot_purge_last_entry(self):
        history = ValueHistory(0, initial_vt=vt(5))
        with pytest.raises(ProtocolError):
            history.purge(vt(5))

    def test_gc_drops_old_committed(self):
        history = ValueHistory(0)
        history.insert(vt(10), 1, committed=True)
        history.insert(vt(20), 2, committed=True)
        dropped = history.gc()
        assert dropped == 2
        assert len(history) == 1
        assert history.current().value == 2

    def test_gc_keeps_uncommitted_suffix(self):
        history = ValueHistory(0)
        history.insert(vt(10), 1, committed=True)
        history.insert(vt(20), 2, committed=False)
        history.gc()
        assert [e.vt.counter for e in history] == [10, 20]

    def test_gc_with_floor_keeps_snapshot_base(self):
        history = ValueHistory(0)
        history.insert(vt(10), 1, committed=True)
        history.insert(vt(20), 2, committed=True)
        history.insert(vt(30), 3, committed=True)
        # A pending snapshot at vt 15 still needs the value at vt 10.
        history.gc(floor=vt(15))
        assert [e.vt.counter for e in history] == [10, 20, 30]
        assert history.read_at(vt(15)).value == 1


@given(
    st.lists(
        st.tuples(st.integers(1, 100), st.integers(0, 3), st.booleans()),
        max_size=40,
        unique_by=lambda t: (t[0], t[1]),
    )
)
def test_property_current_is_max_vt(entries):
    history = ValueHistory("init")
    inserted = [VT_ZERO]
    for counter, site, committed in entries:
        history.insert(vt(counter, site), f"v{counter}", committed=committed)
        inserted.append(vt(counter, site))
    assert history.current().vt == max(inserted)
    # History remains sorted.
    vts = [e.vt for e in history]
    assert vts == sorted(vts)


@given(
    st.lists(st.integers(1, 60), unique=True, min_size=1, max_size=20),
    st.integers(0, 70),
)
def test_property_read_at_matches_bruteforce(counters, probe):
    history = ValueHistory("init")
    for counter in counters:
        history.insert(vt(counter), counter)
    result = history.read_at(vt(probe, site=99))
    candidates = [c for c in counters if vt(c) <= vt(probe, 99)]
    if candidates:
        assert result.value == max(candidates)
    else:
        assert result.value == "init"
