"""Tests for the live-telemetry runtime pieces added with trace propagation:

pluggable clocks (repro.obs.clock), the bounded flight recorder
(repro.obs.flight), the Prometheus text exporter (repro.obs.prom), and
the EventBus staged fast lane that keeps traced transports cheap.
"""

import json
import sys

import pytest

from repro.obs import FlightRecorder, SimClock, WallClock, prometheus_text, write_prometheus
from repro.obs.events import EventBus, ProtocolEvent
from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import sanitize_name
from repro.vtime import VirtualTime


class TestClocks:
    def test_sim_clock_reads_its_source(self):
        now = [0.0]
        clock = SimClock(lambda: now[0])
        assert clock.simulated
        assert clock.now_ms() == 0.0
        now[0] = 42.5
        assert clock.now_ms() == 42.5
        assert clock() == 42.5  # clocks are callables too

    def test_wall_clock_is_monotone_from_zero(self):
        clock = WallClock()
        assert not clock.simulated
        first = clock.now_ms()
        second = clock.now_ms()
        assert 0.0 <= first <= second
        assert clock.wall_origin_unix_s > 0


class TestEventBusStagedLane:
    def emit_n(self, bus: EventBus, n: int) -> None:
        for i in range(n):
            bus.emit_event("committed", 0, float(i), None, {"i": i})

    def test_staged_events_materialize_in_order(self):
        bus = EventBus()
        bus.enable()
        self.emit_n(bus, 5)
        assert len(bus) == 5  # len() must not require materialization
        events = bus.events
        assert [e.seq for e in events] == list(range(5))
        assert all(isinstance(e, ProtocolEvent) for e in events)
        assert events[3].data == {"i": 3}

    def test_materialized_events_stay_frozen(self):
        bus = EventBus()
        bus.enable()
        self.emit_n(bus, 1)
        event = bus.events[0]
        with pytest.raises(Exception):
            event.seq = 99

    def test_subscriber_transition_preserves_order(self):
        bus = EventBus()
        bus.enable()
        self.emit_n(bus, 3)  # staged
        live = []
        bus.subscribe(live.append)  # drains the fast lane
        self.emit_n(bus, 2)  # eager path now
        assert [e.seq for e in bus.events] == list(range(5))
        assert [e.seq for e in live] == [3, 4]

    def test_emit_returns_event_even_after_staging(self):
        bus = EventBus()
        bus.enable()
        self.emit_n(bus, 2)
        event = bus.emit("committed", site=1, time_ms=9.0)
        assert event is not None and event.seq == 2
        assert [e.seq for e in bus.events] == [0, 1, 2]

    def test_clear_drops_staged_events(self):
        bus = EventBus()
        bus.enable()
        self.emit_n(bus, 4)
        bus.clear()
        assert len(bus) == 0
        assert bus.events == []

    def test_inactive_bus_stages_nothing(self):
        bus = EventBus()
        self.emit_n(bus, 3)
        assert len(bus) == 0
        assert bus._seq == 0


class TestFlightRecorder:
    def make_bus_with_events(self, n: int) -> EventBus:
        bus = EventBus()
        bus.enable()
        for i in range(n):
            bus.emit("committed", site=0, time_ms=float(i), txn_vt=VirtualTime(i + 1, 0))
        return bus

    def test_ring_keeps_only_most_recent(self, tmp_path):
        recorder = FlightRecorder(str(tmp_path / "flight.jsonl"), capacity=3)
        bus = EventBus()
        recorder.attach(bus)
        assert bus.active  # a subscriber alone activates the bus
        for i in range(5):
            bus.emit("committed", site=0, time_ms=float(i))
        assert recorder.events_seen == 5
        assert [e.time_ms for e in recorder.ring] == [2.0, 3.0, 4.0]
        # Bounded consumer: the recording buffer did not grow.
        assert bus.events == []

    def test_dump_writes_header_then_events(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        recorder = FlightRecorder(str(path), capacity=8)
        bus = self.make_bus_with_events(2)
        for event in bus.events:
            recorder.record(event)
        written = recorder.dump("fail-stop: site 1", extra={"site": 0})
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert written == str(path)
        assert lines[0]["flight"] == "repro-flight/1"
        assert lines[0]["reason"] == "fail-stop: site 1"
        assert lines[0]["events"] == 2
        assert lines[0]["extra"] == {"site": 0}
        assert [l["time_ms"] for l in lines[1:]] == [0.0, 1.0]

    def test_repeat_dumps_never_overwrite(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        recorder = FlightRecorder(str(path), capacity=8)
        first = recorder.dump("one")
        second = recorder.dump("two")
        third = recorder.dump("three")
        assert (first, second, third) == (str(path), f"{path}.1", f"{path}.2")
        assert recorder.dumps == 3

    def test_capacity_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            FlightRecorder(str(tmp_path / "x"), capacity=0)

    def test_excepthook_dumps_and_chains(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        recorder = FlightRecorder(str(path), capacity=4)
        bus = self.make_bus_with_events(1)
        recorder.record(bus.events[0])
        chained = []
        original = sys.excepthook
        sys.excepthook = lambda *args: chained.append(args)
        try:
            recorder.install_excepthook()
            recorder.install_excepthook()  # idempotent
            try:
                raise RuntimeError("boom")
            except RuntimeError:
                sys.excepthook(*sys.exc_info())
            assert path.exists()
            header = json.loads(path.read_text().splitlines()[0])
            assert "RuntimeError" in header["reason"] and "boom" in header["reason"]
            assert len(chained) == 1  # previous hook still ran
        finally:
            recorder.uninstall_excepthook()
            sys.excepthook = original

    def test_detach_stops_recording(self):
        recorder = FlightRecorder("unused.jsonl", capacity=4)
        bus = EventBus()
        recorder.attach(bus)
        recorder.detach()
        assert not bus.active
        bus.emit("committed", site=0, time_ms=1.0)
        assert recorder.events_seen == 0


class TestPrometheusExport:
    def test_sanitize_name(self):
        assert sanitize_name("transport.peer.1.queue_depth") == (
            "repro_transport_peer_1_queue_depth"
        )

    def test_counters_gauges_and_site_labels(self):
        a = MetricsRegistry(site=0)
        a.inc("engine.commits", 3)
        a.gauge("outbox.depth", 2)
        b = MetricsRegistry(site=1)
        b.inc("engine.commits", 5)
        text = prometheus_text([a.snapshot(), b.snapshot()])
        assert '# TYPE repro_engine_commits_total counter' in text
        assert 'repro_engine_commits_total{site="0"} 3' in text
        assert 'repro_engine_commits_total{site="1"} 5' in text
        assert 'repro_outbox_depth{site="0"} 2' in text
        # One TYPE header per family even with two sites.
        assert text.count("TYPE repro_engine_commits_total") == 1

    def test_negative_site_means_no_label(self):
        reg = MetricsRegistry(site=-1)
        reg.inc("transport.messages_sent")
        text = prometheus_text([reg.snapshot()])
        assert "repro_transport_messages_sent_total 1" in text

    def test_histogram_buckets_in_increasing_le_order(self):
        reg = MetricsRegistry(site=0)
        for v in (0.5, 3.0, 250.0):
            reg.observe("transport.rtt_ms", v)
        text = prometheus_text([reg.snapshot()])
        bucket_lines = [l for l in text.splitlines() if "_bucket" in l]
        assert bucket_lines, text
        # +Inf is last and cumulative counts never decrease.
        assert 'le="+Inf"' in bucket_lines[-1]
        counts = [int(l.rsplit(" ", 1)[1]) for l in bucket_lines]
        assert counts == sorted(counts)
        assert counts[-1] == 3
        assert "repro_transport_rtt_ms_count" in text
        assert "repro_transport_rtt_ms_sum" in text

    def test_write_prometheus_atomic_and_rereadable(self, tmp_path):
        reg = MetricsRegistry(site=0)
        reg.inc("engine.commits")
        path = tmp_path / "metrics.prom"
        written = write_prometheus(str(path), [reg.snapshot()])
        assert written == str(path)
        assert path.read_text().endswith("\n")
        # Overwrite in place (atomic replace, no stale tmp files left).
        write_prometheus(str(path), [reg.snapshot()])
        leftovers = [p for p in tmp_path.iterdir() if p.name != "metrics.prom"]
        assert leftovers == []

    def test_empty_snapshot_renders_empty(self):
        assert prometheus_text([MetricsRegistry(site=0).snapshot()]) == ""

    def test_summary_renders_quantile_labeled_gauges(self):
        reg = MetricsRegistry(site=2)
        for v in range(1, 101):
            reg.observe_summary("engine.commit_latency_ms", float(v))
        text = prometheus_text([reg.snapshot()])
        assert "# TYPE repro_engine_commit_latency_ms summary" in text
        lines = [l for l in text.splitlines() if not l.startswith("#")]
        quantile_lines = [l for l in lines if 'quantile="' in l]
        # Quantile series in increasing-q order, then _sum and _count.
        qs = [l.split('quantile="')[1].split('"')[0] for l in quantile_lines]
        assert qs == sorted(qs, key=float)
        assert 'repro_engine_commit_latency_ms_count{site="2"} 100' in text
        assert 'repro_engine_commit_latency_ms_sum{site="2"} 5050' in text


class TestPromConformance:
    """Render -> parse_prometheus_text -> compare (text-format round trip)."""

    def build_text(self):
        a = MetricsRegistry(site=0)
        a.inc("engine.commits", 3)
        a.gauge("outbox.depth", 2)
        for v in (0.5, 3.0, 250.0):
            a.observe("transport.rtt_ms", v)
        for v in range(1, 51):
            a.observe_summary("engine.commit_latency_ms", float(v))
        b = MetricsRegistry(site=-1)
        b.inc("transport.frames_sent", 7)
        return prometheus_text([a.snapshot(), b.snapshot()]), a, b

    def test_every_line_parses(self):
        from repro.obs.prom import parse_prometheus_text

        text, _a, _b = self.build_text()
        types, samples = parse_prometheus_text(text)
        sample_lines = [
            l for l in text.splitlines() if l.strip() and not l.startswith("#")
        ]
        assert len(samples) == len(sample_lines)
        assert types["repro_engine_commits_total"] == "counter"
        assert types["repro_outbox_depth"] == "gauge"
        assert types["repro_transport_rtt_ms"] == "histogram"
        assert types["repro_engine_commit_latency_ms"] == "summary"

    def test_values_round_trip(self):
        from repro.obs.prom import parse_prometheus_text

        text, a, _b = self.build_text()
        _types, samples = parse_prometheus_text(text)
        by_key = {(n, tuple(sorted(l.items()))): v for n, l, v in samples}
        assert by_key[("repro_engine_commits_total", (("site", "0"),))] == 3.0
        assert by_key[("repro_transport_frames_sent_total", ())] == 7.0
        assert by_key[("repro_outbox_depth", (("site", "0"),))] == 2.0
        # Histogram: +Inf bucket and _count both equal the observation count.
        assert by_key[
            ("repro_transport_rtt_ms_bucket", (("le", "+Inf"), ("site", "0")))
        ] == 3.0
        assert by_key[("repro_transport_rtt_ms_count", (("site", "0"),))] == 3.0
        # Summary: parsed quantile values match the live sketch's answers.
        summ = a.snapshot()["summaries"]["engine.commit_latency_ms"]
        for q, value in summ["quantiles"].items():
            key = ("repro_engine_commit_latency_ms", (("quantile", q), ("site", "0")))
            assert by_key[key] == pytest.approx(value)
        assert by_key[
            ("repro_engine_commit_latency_ms_count", (("site", "0"),))
        ] == summ["count"]

    def test_histogram_cumulative_counts_survive_parse(self):
        from repro.obs.prom import parse_prometheus_text

        text, _a, _b = self.build_text()
        _types, samples = parse_prometheus_text(text)
        buckets = [
            (l["le"], v)
            for n, l, v in samples
            if n == "repro_transport_rtt_ms_bucket"
        ]
        counts = [v for _le, v in buckets]
        assert counts == sorted(counts)  # cumulative, never decreasing
        assert buckets[-1][0] == "+Inf"

    def test_unparseable_line_raises(self):
        from repro.obs.prom import parse_prometheus_text

        with pytest.raises(ValueError):
            parse_prometheus_text("this is { not a metric\n")
        with pytest.raises(ValueError):
            parse_prometheus_text("repro_ok_total notanumber\n")

    def test_file_round_trip(self, tmp_path):
        from repro.obs.prom import parse_prometheus_text

        text, a, b = self.build_text()
        path = tmp_path / "metrics.prom"
        write_prometheus(str(path), [a.snapshot(), b.snapshot()])
        types, samples = parse_prometheus_text(path.read_text())
        _t2, samples2 = parse_prometheus_text(text)
        assert samples == samples2
        assert "repro_engine_commit_latency_ms" in types
