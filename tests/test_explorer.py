"""Tests for the randomized-schedule conformance explorer.

Covers deterministic sampling, healthy campaigns, artifact replay
(byte-identity), shrinking, the CLI entry point, and two crafted
regression scenarios: the coordinator double-failure and the
reliable-channel assumption (selective drops are expected to violate).
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.explore import (
    FaultEvent,
    PartySpec,
    TrialConfig,
    artifact_for,
    check_trial,
    replay_artifact,
    run_campaign,
    run_trial,
    sample_config,
    shrink_config,
)
from repro.explore.campaign import artifact_json, run_trial_violations


def mutated_config(**overrides):
    """A small trial the views_pre_commit canary reliably trips."""
    config = sample_config(0, 0, mutations=("views_pre_commit",))
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


class TestSampling:
    def test_same_seed_same_config(self):
        for index in range(5):
            assert (
                sample_config(3, index).to_dict() == sample_config(3, index).to_dict()
            )

    def test_different_indices_differ(self):
        dicts = [sample_config(0, i).to_dict() for i in range(8)]
        assert len({json.dumps(d, sort_keys=True) for d in dicts}) > 1

    def test_config_roundtrips_through_dict(self):
        config = sample_config(1, 4)
        assert TrialConfig.from_dict(config.to_dict()).to_dict() == config.to_dict()

    def test_faults_flag_suppresses_faults(self):
        assert sample_config(0, 3, faults=False).faults == []

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent.from_dict({"at_ms": 0.0, "kind": "meteor", "args": {}})

    def test_unknown_party_kind_rejected(self):
        spec = sample_config(0, 0).parties[0].to_dict()
        spec["kind"] = "chaos"
        with pytest.raises(ValueError):
            PartySpec.from_dict(spec)

    def test_sampler_never_emits_drops(self):
        # Selective drops break the reliable-channel assumption; healthy
        # campaigns must not contain them (see plan.py's soundness notes).
        for index in range(40):
            for fault in sample_config(7, index).faults:
                assert fault.kind != "drop"


class TestCampaign:
    def test_healthy_campaign_has_no_violations(self):
        result = run_campaign(trials=25, seed=0)
        assert result.ok, result.summary()
        assert result.trials_run == 25
        assert "no violations" in result.summary()

    def test_campaign_is_deterministic(self):
        first = run_campaign(trials=2, seed=0, mutations=("views_pre_commit",))
        second = run_campaign(trials=2, seed=0, mutations=("views_pre_commit",))
        assert [f.index for f in first.failures] == [f.index for f in second.failures]
        assert first.failures, "canary campaign should violate"
        a = artifact_for(first.failures[0].config, first.failures[0].violations)
        b = artifact_for(second.failures[0].config, second.failures[0].violations)
        assert artifact_json(a) == artifact_json(b)

    def test_stop_at_first_stops_early(self):
        result = run_campaign(
            trials=50, seed=0, mutations=("views_pre_commit",), stop_at_first=True
        )
        assert result.failures
        assert result.trials_run < 50


class TestArtifacts:
    def test_replay_is_byte_identical(self):
        config = mutated_config()
        violations = run_trial_violations(config)
        assert violations
        artifact = artifact_for(config, violations)
        # Round-trip through JSON text, as the CLI does with --replay.
        loaded = json.loads(artifact_json(artifact))
        regenerated, identical = replay_artifact(loaded)
        assert identical
        assert artifact_json(regenerated) == artifact_json(artifact)

    def test_replay_rejects_unknown_format(self):
        with pytest.raises(ValueError):
            replay_artifact({"format": "not-an-artifact", "config": {}})

    def test_replay_with_embedded_timeline_is_byte_identical(self):
        """An artifact carrying the failing trial's event timeline still
        replays byte-identically; the timeline is excluded from the
        replay-identity comparison but regenerated deterministically."""
        from repro.explore import capture_timeline, replay_identity

        config = mutated_config()
        violations = run_trial_violations(config)
        timeline = capture_timeline(config)
        assert timeline, "an observed violating trial must record events"
        artifact = artifact_for(config, violations, timeline=timeline)
        loaded = json.loads(artifact_json(artifact))
        assert loaded["timeline"] == timeline

        regenerated, identical = replay_artifact(loaded)
        assert identical
        # Timeline is deterministic too: the replay regenerated it equal.
        assert regenerated["timeline"] == timeline
        assert artifact_json(regenerated) == artifact_json(artifact)
        # The identity comparison ignores the timeline: stripping it (or
        # corrupting it) must not change the replay verdict.
        assert replay_identity(artifact) == replay_identity(
            artifact_for(config, violations)
        )
        tampered = dict(loaded)
        tampered["timeline"] = []
        _, still_identical = replay_artifact(tampered)
        assert still_identical

    def test_observation_does_not_perturb_outcomes(self):
        """Observed and unobserved runs of one config reach identical
        violations and committed state (zero-overhead contract, causal
        half: recording must never change the schedule)."""
        config = mutated_config()
        plain = run_trial(config)
        observed = run_trial(config, observe=True)
        assert not plain.session.bus.events
        assert observed.events
        assert [str(v) for v in check_trial(plain)] == [str(v) for v in check_trial(observed)]
        assert [s.state_digest() for s in plain.live_sites()] == [
            s.state_digest() for s in observed.live_sites()
        ]


class TestShrinking:
    def test_shrinker_removes_superfluous_faults(self):
        # The mutation alone violates; any sampled faults are superfluous
        # noise the shrinker must strip, plus two planted jitter events.
        config = mutated_config()
        config.faults = list(config.faults) + [
            FaultEvent(
                at_ms=30.0,
                kind="jitter",
                args={"src": 0, "dst": 1, "low_ms": 20.0, "high_ms": 50.0},
            ),
            FaultEvent(
                at_ms=60.0,
                kind="jitter",
                args={"src": 1, "dst": 0, "low_ms": 20.0, "high_ms": 50.0},
            ),
        ]
        shrunk, violations = shrink_config(config)
        assert violations, "shrinking must preserve the violation"
        assert shrunk.faults == []

    def test_shrink_of_clean_config_is_identity(self):
        config = sample_config(0, 0)
        shrunk, violations = shrink_config(config)
        assert violations == []
        assert shrunk is config

    def test_without_fault_removes_whole_group(self):
        config = sample_config(0, 0, faults=False)
        config.faults = [
            FaultEvent(at_ms=10.0, kind="partition", args={"group_a": [0], "group_b": [1]}, group=1),
            FaultEvent(at_ms=20.0, kind="crash", args={"site": 0}, group=1),
            FaultEvent(at_ms=40.0, kind="heal", args={}, group=1),
            FaultEvent(at_ms=5.0, kind="jitter", args={"src": 0, "dst": 1, "low_ms": 1.0, "high_ms": 2.0}),
        ]
        remaining = config.without_fault(1).faults
        assert [f.kind for f in remaining] == ["jitter"]


class TestDoubleFailureRegression:
    """Coordinator dies while its failure-resolution queries for an earlier
    failed site are still in flight (paper section 3.4's hardest case).

    Site 3 crashes at 120ms (notification at 125ms); site 0 — the minimum
    survivor, hence the coordinator resolving site 3's transactions —
    crashes at 128ms, after sending its resolution queries (~125ms) but
    before the replies arrive (~133ms).  The surviving sites must elect
    the next coordinator, finish the resolution, repair the replication
    graphs, and converge with no protocol residue.
    """

    CONFIG = {
        "n_sites": 4,
        "latency": {"kind": "fixed", "ms": 8.0},
        "net_seed": 11,
        "parties": [
            {"site": 1, "kind": "rmw", "count": 5, "arrival": "uniform",
             "interval_ms": 30.0, "start_ms": 0.0, "arrival_seed": 1, "amount": 1},
            {"site": 2, "kind": "rmw", "count": 5, "arrival": "uniform",
             "interval_ms": 30.0, "start_ms": 10.0, "arrival_seed": 2, "amount": 1},
            {"site": 3, "kind": "xfer", "count": 3, "arrival": "uniform",
             "interval_ms": 40.0, "start_ms": 5.0, "arrival_seed": 3, "amount": 1},
        ],
        "faults": [
            {"at_ms": 120.0, "kind": "crash", "args": {"site": 3, "notify_after_ms": 5.0}},
            {"at_ms": 128.0, "kind": "crash", "args": {"site": 0, "notify_after_ms": 5.0}},
        ],
        "mutations": [],
        "views": True,
        "max_events": 5_000_000,
        "label": "double-failure-regression",
    }

    def test_survivors_converge_without_violations(self):
        config = TrialConfig.from_dict(self.CONFIG)
        result = run_trial(config)
        violations = check_trial(result)
        assert violations == [], [str(v) for v in violations]
        assert [s.site_id for s in result.live_sites()] == [1, 2]
        # Both rmw parties ran to completion despite losing two sites.
        values = {
            result.objects["ctr"][s.site_id].get() for s in result.live_sites()
        }
        assert values == {10}

    def test_scenario_replays_from_artifact(self):
        config = TrialConfig.from_dict(self.CONFIG)
        artifact = artifact_for(config, run_trial_violations(config))
        _, identical = replay_artifact(json.loads(artifact_json(artifact)))
        assert identical


class TestReliableChannelAssumption:
    def test_selective_drop_without_crash_violates(self):
        """Documents the protocol's infrastructure assumption: silently
        dropping messages on a healthy channel (no subsequent fail-stop
        crash) is outside the fault model, and the oracles detect the
        resulting divergence.  This is why the sampler never emits bare
        ``drop`` events.

        Note a *bounded* drop count is actually absorbed: propagation is
        retried until acknowledged, so only severing the channel outright
        (drop count exceeding the retry budget) diverges the replicas.
        """
        config = TrialConfig(
            n_sites=2,
            latency={"kind": "fixed", "ms": 5.0},
            net_seed=3,
            parties=[
                PartySpec(site=0, kind="blind", count=3, arrival="uniform",
                          interval_ms=40.0, start_ms=0.0, arrival_seed=5),
            ],
            faults=[
                FaultEvent(at_ms=0.0, kind="drop", args={"dst": 1, "count": 100, "src": 0}),
            ],
            views=False,
            max_events=500_000,
            label="drop-assumption",
        )
        violations = run_trial_violations(config)
        assert violations, "dropping replica updates must break convergence"
        assert {v.oracle for v in violations} & {"convergence", "effect", "residue"}


class TestExploreCli:
    def test_healthy_campaign_exits_zero(self, capsys):
        assert cli_main(["explore", "--trials", "3", "--seed", "0"]) == 0
        assert "no violations" in capsys.readouterr().out

    def test_violation_writes_artifact_and_exits_nonzero(self, tmp_path, capsys):
        out = tmp_path / "violation.json"
        code = cli_main(
            [
                "explore", "--trials", "3", "--seed", "0",
                "--mutate", "views_pre_commit", "--stop-at-first", "--shrink",
                "--out", str(out),
            ]
        )
        assert code == 1
        assert out.exists()
        artifact = json.loads(out.read_text())
        assert artifact["format"] == "repro-explore/1"
        assert artifact["violations"]
        assert "views_pre_commit" in artifact["config"]["mutations"]
        # The failing trial's event timeline rides along for debugging.
        assert artifact["timeline"]
        assert {e["kind"] for e in artifact["timeline"]} >= {"txn_submitted", "committed"}

    def test_timeline_out_writes_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "violation.json"
        trace_out = tmp_path / "trace.json"
        code = cli_main(
            [
                "explore", "--trials", "1", "--seed", "0",
                "--mutate", "views_pre_commit",
                "--out", str(out), "--timeline-out", str(trace_out),
            ]
        )
        assert code == 1
        document = json.loads(trace_out.read_text())
        assert document["traceEvents"]
        assert any(e["ph"] == "X" for e in document["traceEvents"])

    def test_replay_mode_round_trips(self, tmp_path, capsys):
        out = tmp_path / "violation.json"
        cli_main(
            [
                "explore", "--trials", "1", "--seed", "0",
                "--mutate", "views_pre_commit", "--out", str(out),
            ]
        )
        capsys.readouterr()  # discard the campaign's own output
        code = cli_main(["explore", "--replay", str(out), "--json"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["byte_identical"] is True
        assert summary["violations"] > 0

    def test_json_summary(self, capsys):
        assert cli_main(["explore", "--trials", "2", "--seed", "0", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary == {
            "trials": 2,
            "seed": 0,
            "mutations": [],
            "violating_trials": [],
            "artifact": None,
            "timeline": None,
        }
