"""Property-based tests for state sync: random trees roundtrip exactly.

The join protocol's correctness hinges on ``export_state``/``import_state``
reproducing arbitrary committed subtrees — values, nesting, tombstones,
and slot identities — exactly.  Hypothesis builds random object trees via
the public transactional API and checks the roundtrip.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Session
from repro.core import sync as syncmod

SETTINGS = settings(max_examples=40, deadline=None)

# A recursive strategy for (kind, initial) specs buildable via composites.
scalar_spec = st.one_of(
    st.tuples(st.just("int"), st.integers(-1000, 1000)),
    st.tuples(st.just("float"), st.floats(-100, 100, allow_nan=False)),
    st.tuples(st.just("string"), st.text(max_size=8)),
)

spec = st.recursive(
    scalar_spec,
    lambda children: st.one_of(
        st.tuples(st.just("list"), st.lists(children, max_size=3)),
        st.tuples(
            st.just("map"),
            st.dictionaries(st.text(min_size=1, max_size=4), children, max_size=3),
        ),
    ),
    max_leaves=8,
)


def value(obj):
    return obj.value_at(obj.current_value_vt())


def build_tree(site, root_kind, items):
    """Create a root composite and populate it via transactions."""
    if root_kind == "list":
        root = site.create_list("root")
        def fill():
            for kind, initial in items:
                root.append(kind, initial)
    else:
        root = site.create_map("root")
        def fill():
            for i, (kind, initial) in enumerate(items):
                root.put(f"k{i}", kind, initial)
    outcome = site.transact(fill)
    assert outcome.committed
    return root


@SETTINGS
@given(items=st.lists(spec, max_size=4), root_kind=st.sampled_from(["list", "map"]))
def test_roundtrip_preserves_value(items, root_kind):
    src_site = Session().add_site("src")
    root = build_tree(src_site, root_kind, items)
    exported, sync_vt, pending = syncmod.export_state(root)
    assert pending == []  # everything committed

    dst_site = Session().add_site("dst")
    target = dst_site.create_list("root") if root_kind == "list" else dst_site.create_map("root")
    syncmod.import_state(target, exported, dst_site.clock.tick())
    assert value(target) == value(root)
    # Committed-only reads agree too (flags survived the trip).
    assert target.value_at(target.current_value_vt(), committed_only=True) == value(root)


@SETTINGS
@given(items=st.lists(scalar_spec, min_size=2, max_size=5), drop=st.integers(0, 4))
def test_roundtrip_preserves_tombstones(items, drop):
    src_site = Session().add_site("src")
    root = build_tree(src_site, "list", items)
    drop_index = drop % len(items)
    src_site.transact(lambda: root.remove(drop_index))
    exported, _, pending = syncmod.export_state(root)
    assert pending == []

    dst_site = Session().add_site("dst")
    target = dst_site.create_list("root")
    syncmod.import_state(target, exported, dst_site.clock.tick())
    assert value(target) == value(root)
    assert len(value(target)) == len(items) - 1
    # Tombstoned slots travel (same slot count including invisible ones).
    assert len(target._slots) == len(root._slots)


@SETTINGS
@given(items=st.lists(spec, max_size=3))
def test_restore_is_exact_inverse(items):
    """import followed by restore returns the object to its prior state."""
    site_a = Session().add_site("a")
    root_a = build_tree(site_a, "list", items)
    exported, _, _ = syncmod.export_state(root_a)

    site_b = Session().add_site("b")
    root_b = site_b.create_list("root")
    site_b.transact(lambda: root_b.append("string", "local-before"))
    before = value(root_b)
    join_vt = site_b.clock.tick()
    syncmod.import_state(root_b, exported, join_vt)
    assert value(root_b) == value(root_a)
    syncmod.restore_state(root_b, join_vt)
    assert value(root_b) == before


@SETTINGS
@given(items=st.lists(spec, max_size=3))
def test_slot_identities_survive(items, ):
    src_site = Session().add_site("src")
    root = build_tree(src_site, "list", items)
    exported, _, _ = syncmod.export_state(root)
    dst_site = Session().add_site("dst")
    target = dst_site.create_list("root")
    syncmod.import_state(target, exported, dst_site.clock.tick())
    assert [s.slot_id for s in target._slots] == [s.slot_id for s in root._slots]
