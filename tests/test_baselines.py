"""Tests for the baseline comparator systems."""

import pytest

from repro.baselines import CentralizedSystem, GvtSystem, LockingSystem
from repro import DInt


class TestGvtSystem:
    def test_instant_local_echo(self):
        system = GvtSystem(n_sites=4, latency_ms=50.0)
        probe = system.issue_update(1, "v")
        assert probe.local_echo_latency() == 0.0

    def test_values_propagate(self):
        system = GvtSystem(n_sites=3, latency_ms=50.0)
        system.issue_update(0, 42)
        system.run_for(60)
        assert all(system.value_at(s) == 42 for s in range(3))

    def test_commit_requires_token_rounds(self):
        system = GvtSystem(n_sites=4, latency_ms=50.0)
        system.run_for(500)  # let the token circulate a while
        probe = system.issue_update(1, "x")
        system.run_for(5000)
        latency = probe.commit_latency_at(1)
        assert latency is not None
        # One ring round is N*t = 200ms; commit takes at least one round.
        assert latency >= 200.0

    def test_commit_latency_grows_with_network_size(self):
        latencies = {}
        for n in (3, 6, 12):
            system = GvtSystem(n_sites=n, latency_ms=20.0)
            system.run_for(1000)
            probe = system.issue_update(1, "x")
            system.run_for(20.0 * n * 6 + 2000)
            latencies[n] = probe.commit_latency_at(1)
        assert latencies[3] < latencies[6] < latencies[12]

    def test_lww_convergence(self):
        system = GvtSystem(n_sites=3, latency_ms=30.0)
        system.issue_update(0, "a")
        system.issue_update(2, "b")
        system.run_for(5000)
        values = {system.value_at(s) for s in range(3)}
        assert len(values) == 1

    def test_single_site_commits_instantly(self):
        system = GvtSystem(n_sites=1, latency_ms=50.0)
        probe = system.issue_update(0, 1)
        assert probe.commit_latency_at(0) == 0.0


class TestLockingSystem:
    def test_local_echo_costs_round_trip_for_remote_site(self):
        system = LockingSystem(n_sites=3, latency_ms=50.0)
        probe = system.issue_update(1, "v")
        system.settle()
        assert probe.local_echo_latency() == 100.0  # 2t to get the lock

    def test_primary_site_echoes_instantly(self):
        system = LockingSystem(n_sites=3, latency_ms=50.0)
        probe = system.issue_update(0, "v")
        system.settle()
        assert probe.local_echo_latency() == 0.0

    def test_conflicting_requests_serialize(self):
        system = LockingSystem(n_sites=3, latency_ms=50.0)
        p1 = system.issue_update(1, "one")
        p2 = system.issue_update(2, "two")
        system.settle()
        assert all(system.value_at(s) == system.value_at(0) for s in range(3))
        # Both eventually applied; the second waited for the first's release.
        assert p1.local_echo_ms is not None and p2.local_echo_ms is not None
        assert abs(p2.local_echo_ms - p1.local_echo_ms) >= 100.0

    def test_no_rollbacks_committed_equals_value(self):
        system = LockingSystem(n_sites=2, latency_ms=10.0)
        system.issue_update(1, 5)
        system.settle()
        assert system.committed_value_at(0) == system.value_at(0) == 5


class TestCentralizedSystem:
    def test_client_echo_costs_round_trip(self):
        system = CentralizedSystem(n_sites=3, latency_ms=50.0)
        probe = system.issue_update(2, "v")
        system.settle()
        assert probe.local_echo_latency() == 100.0

    def test_server_echoes_instantly(self):
        system = CentralizedSystem(n_sites=3, latency_ms=50.0)
        probe = system.issue_update(0, "v")
        system.settle()
        assert probe.local_echo_latency() == 0.0

    def test_all_clients_see_state(self):
        system = CentralizedSystem(n_sites=4, latency_ms=25.0)
        system.issue_update(3, 7)
        system.settle()
        assert all(system.value_at(s) == 7 for s in range(4))

    def test_server_serializes_everything(self):
        system = CentralizedSystem(n_sites=3, latency_ms=50.0)
        system.issue_update(1, "one")
        system.issue_update(2, "two")
        system.settle()
        values = {system.value_at(s) for s in range(3)}
        assert len(values) == 1


class TestHeadToHead:
    def test_decaf_beats_baselines_on_local_echo(self):
        """The paper's core responsiveness claim: replicated optimistic
        execution echoes instantly; locking and centralized pay 2t."""
        from repro import Session

        session = Session.simulated(latency_ms=50.0)
        alice, bob = session.add_sites(2)
        a, b = session.replicate(DInt, "x", [alice, bob], initial=0)
        session.settle()
        out = bob.transact(lambda: b.set(1))
        decaf_echo = out.local_apply_time_ms - out.start_time_ms

        locking = LockingSystem(n_sites=2, latency_ms=50.0)
        lock_probe = locking.issue_update(1, 1)
        locking.settle()

        central = CentralizedSystem(n_sites=2, latency_ms=50.0)
        central_probe = central.issue_update(1, 1)
        central.settle()

        assert decaf_echo == 0.0
        assert lock_probe.local_echo_latency() == 100.0
        assert central_probe.local_echo_latency() == 100.0
