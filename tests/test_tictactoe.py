"""Tests for the tic-tac-toe app: transactional game integrity."""

import pytest

from repro import Session
from repro.apps.tictactoe import TicTacToe
from repro import DMap, DString


def new_game(latency=30.0):
    session = Session.simulated(latency_ms=latency)
    px, po = session.add_sites(2)
    boards = session.replicate(DMap, "board", [px, po])
    turns = session.replicate(DString, "turn", [px, po], initial="X")
    session.settle()
    game_x = TicTacToe(px, boards[0], turns[0], "X")
    game_o = TicTacToe(po, boards[1], turns[1], "O")
    return session, game_x, game_o


class TestRules:
    def test_alternating_moves(self):
        session, x, o = new_game()
        tx = x.move(4)
        session.settle()
        assert tx.outcome.committed
        to = o.move(0)
        session.settle()
        assert to.outcome.committed
        assert x.cells() == o.cells() == {4: "X", 0: "O"}
        assert x.turn.get() == "X"

    def test_out_of_turn_rejected(self):
        session, x, o = new_game()
        txn = o.move(0)  # X moves first
        session.settle()
        assert not txn.outcome.committed
        assert "not O's turn" in txn.rejection
        assert o.cells() == {}

    def test_occupied_cell_rejected(self):
        session, x, o = new_game()
        x.move(4)
        session.settle()
        txn = o.move(4)
        session.settle()
        assert not txn.outcome.committed
        assert "already taken" in txn.rejection

    def test_out_of_range_rejected(self):
        session, x, o = new_game()
        txn = x.move(9)
        assert not txn.outcome.committed

    def test_win_detection(self):
        session, x, o = new_game()
        for cell_x, cell_o in ((0, 3), (1, 4)):
            x.move(cell_x); session.settle()
            o.move(cell_o); session.settle()
        x.move(2)
        session.settle()
        assert x.winner() == o.winner() == "X"

    def test_no_moves_after_win(self):
        session, x, o = new_game()
        for cell_x, cell_o in ((0, 3), (1, 4)):
            x.move(cell_x); session.settle()
            o.move(cell_o); session.settle()
        x.move(2); session.settle()
        txn = o.move(5)
        session.settle()
        assert not txn.outcome.committed
        assert "game is over" in txn.rejection

    def test_draw(self):
        session, x, o = new_game()
        # X: 0,1,5,6,8 / O: 4,2,3,7 — a known draw sequence.
        sequence = [(0, "x"), (4, "o"), (1, "x"), (2, "o"), (5, "x"), (3, "o"), (6, "x"), (7, "o"), (8, "x")]
        for cell, who in sequence:
            game = x if who == "x" else o
            txn = game.move(cell)
            session.settle()
            assert txn.outcome.committed, txn.rejection
        assert x.is_draw() and o.is_draw()
        assert x.winner() is None

    def test_render(self):
        session, x, o = new_game()
        x.move(4); session.settle()
        art = o.render()
        assert art.count("X") == 1
        assert "-+-+-" in art


class TestConcurrency:
    def test_racing_for_the_same_turn_exactly_one_wins(self):
        """Both players move 'simultaneously' while it is X's turn: the
        optimistic protocol serializes; O's move re-executes against the
        new state and is rejected as out of turn or plays validly after X."""
        session, x, o = new_game(latency=60.0)
        tx = x.move(4)
        to = o.move(0)  # concurrent, out of turn optimistically
        session.settle()
        assert tx.outcome.committed
        cells = x.cells()
        assert cells == o.cells()
        assert cells[4] == "X"
        if to.outcome.committed:
            # O's retry landed AFTER X's move, making it legal.
            assert cells[0] == "O"
            assert x.turn.get() == "X"
        else:
            assert "turn" in to.rejection or "taken" in to.rejection

    def test_racing_for_same_cell(self):
        """X moves; O (whose turn it becomes) races X's next move for cell 8
        — the board never ends up with two marks in one cell."""
        session, x, o = new_game(latency=60.0)
        x.move(4)
        session.settle()
        to = o.move(8)
        tx = x.move(8)  # concurrent: both want cell 8
        session.settle()
        cells = x.cells()
        assert cells == o.cells()
        assert cells[8] in ("X", "O")
        marks = list(cells.values())
        # Exactly one mark in cell 8 and global alternation preserved:
        assert abs(marks.count("X") - marks.count("O")) <= 1
