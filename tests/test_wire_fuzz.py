"""Adversarial decode fuzzing: malformed bytes must fail *cleanly*.

The decoder's contract is that any byte string either decodes to a value or
raises :class:`WireError` — never IndexError, struct.error, UnicodeError,
RecursionError, or a hang.  The compiled unpackers take many speculative
fast paths (fused tag reads, span memos, inline varints), so these
properties hammer them with arbitrary bytes, mutated valid frames, and
truncations of valid frames.
"""

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.core.messages import OpPayload, TxnPropagateMsg, WriteOp
from repro.errors import WireError
from repro.vtime import VirtualTime
from repro.wire import decode, decode_frame_body, encode
from repro.wire.codec import WIRE_VERSION


def _decode_or_wire_error(data):
    """decode() may succeed or raise WireError; anything else is a bug."""
    try:
        decode(data)
    except WireError:
        pass


def _sample_frames():
    writes = tuple(
        WriteOp(
            object_uid=f"s{i}:ctr",
            op=OpPayload(kind="set", args=(i,)),
            read_vt=VirtualTime(40, 2),
            graph_vt=VirtualTime(12, 0),
        )
        for i in range(3)
    )
    msg = TxnPropagateMsg(
        txn_vt=VirtualTime(41, 2), origin=2, writes=writes, read_checks=(), clock=57
    )
    return [
        encode(msg),
        encode((0, 1, msg)),
        encode({"k": (VirtualTime(1, 0), b"\x00\xff")}),
        encode([None, True, -(2**40), 2.5, frozenset({1, 2})]),
    ]


SAMPLE_FRAMES = _sample_frames()


@settings(max_examples=300)
@given(st.binary(max_size=256))
@example(b"")
@example(bytes([WIRE_VERSION]))
@example(bytes([WIRE_VERSION, 0x0B]))  # VT tag, no varints
@example(bytes([WIRE_VERSION, 0x05, 0x7F]))  # str header, no payload
@example(bytes([WIRE_VERSION, 0x07, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F]))  # huge tuple
@example(bytes([WIRE_VERSION, 0x80]))  # continuation bit, no next byte
@example(bytes([WIRE_VERSION, 0x26]))  # struct tag, no fields
def test_arbitrary_bytes_never_escape_wire_error(data):
    _decode_or_wire_error(data)


@settings(max_examples=200)
@given(
    st.sampled_from(SAMPLE_FRAMES),
    st.data(),
)
def test_mutated_valid_frames_never_escape_wire_error(frame, data):
    pos = data.draw(st.integers(0, len(frame) - 1))
    new_byte = data.draw(st.integers(0, 255))
    mutated = frame[:pos] + bytes([new_byte]) + frame[pos + 1 :]
    _decode_or_wire_error(mutated)


@settings(max_examples=200)
@given(st.sampled_from(SAMPLE_FRAMES), st.data())
def test_truncated_valid_frames_never_escape_wire_error(frame, data):
    cut = data.draw(st.integers(0, len(frame) - 1))
    _decode_or_wire_error(frame[:cut])


@settings(max_examples=100)
@given(st.sampled_from(SAMPLE_FRAMES), st.binary(min_size=1, max_size=8))
def test_trailing_garbage_raises_wire_error(frame, suffix):
    with pytest.raises(WireError):
        decode(frame + suffix)


@settings(max_examples=200)
@given(st.binary(max_size=64))
def test_memoryview_input_behaves_like_bytes(data):
    try:
        from_bytes = decode(data)
        bytes_ok = True
    except WireError as exc:
        from_bytes = str(exc)
        bytes_ok = False
    try:
        from_view = decode(memoryview(data))
        view_ok = True
    except WireError as exc:
        from_view = str(exc)
        view_ok = False
    assert bytes_ok == view_ok
    if bytes_ok:
        assert from_view == from_bytes


@settings(max_examples=200)
@given(st.binary(max_size=128))
def test_frame_body_decoder_never_escapes_wire_error(body):
    try:
        decode_frame_body(body)
    except WireError:
        pass


def test_deep_nesting_does_not_blow_the_stack():
    # 2000 nested single-element tuples: decode must either succeed or fail
    # cleanly, not die with RecursionError.
    depth = 2000
    payload = bytes([WIRE_VERSION]) + bytes([0x07, 0x01]) * depth + bytes([0x00])
    try:
        value = decode(payload)
    except WireError:
        return
    for _ in range(depth):
        assert isinstance(value, tuple) and len(value) == 1
        value = value[0]
    assert value is None
