"""Tests for SiteRuntime introspection: state digests, protocol residue,
and the per-site metrics registry's determinism guarantees.

These are the oracles' building blocks (the explorer trusts them to
detect divergence and leaks), so they get direct coverage: converged
replicas must produce identical digests, a quiescent healthy session must
leave zero residue, and metrics snapshots must be byte-stable for a given
seed — including histogram bucket assignment, which must not depend on
observation order or platform.
"""

from repro import Session
from repro.explore import check_trial, run_trial, sample_config
from repro import DInt


def settled_session(n_sites=3, latency_ms=20.0, txns=6):
    session = Session.simulated(latency_ms=latency_ms)
    sites = session.add_sites(n_sites)
    objs = session.replicate(DInt, "x", sites, initial=0)
    session.settle()
    for i in range(txns):
        site = sites[i % n_sites]
        obj = objs[i % n_sites]
        site.transact(lambda obj=obj: obj.set(obj.get() + 1))
        session.settle()
    return session, sites, objs


class TestStateDigest:
    def test_converged_replicas_have_identical_digests(self):
        session, sites, objs = settled_session()
        digests = [site.state_digest() for site in sites]
        assert digests[0] == digests[1] == digests[2]
        assert digests[0], "digest of a session with replicated roots is non-empty"

    def test_digest_reflects_committed_value(self):
        session, sites, objs = settled_session(txns=4)
        _, value_repr = sites[0].state_digest()["s0:x"]
        assert value_repr == "4"

    def test_digest_diverges_on_purpose(self):
        """Sanity: the digest actually discriminates — two sessions with
        different committed values produce different digests."""
        _, sites_a, _ = settled_session(txns=2)
        _, sites_b, _ = settled_session(txns=3)
        assert sites_a[0].state_digest() != sites_b[0].state_digest()

    def test_explorer_trial_digests_agree_across_live_sites(self):
        result = run_trial(sample_config(0, 0))
        live = result.live_sites()
        digests = [s.state_digest() for s in live]
        assert all(d == digests[0] for d in digests[1:])


class TestProtocolResidue:
    def test_quiescent_healthy_session_leaves_no_residue(self):
        session, sites, _ = settled_session()
        for site in sites:
            assert site.protocol_residue() == {}

    def test_explorer_trial_leaves_no_residue(self):
        result = run_trial(sample_config(0, 1))
        assert not check_trial(result), "sampled healthy trial must pass all oracles"
        for site in result.live_sites():
            assert site.protocol_residue() == {}

    def test_residue_detects_uncommitted_history(self):
        """Sanity that the probe can fire: an in-flight (unsettled) write
        shows up as residue before the commit round trip completes."""
        session = Session.simulated(latency_ms=50.0)
        sites = session.add_sites(2)
        objs = session.replicate(DInt, "x", sites, initial=0)
        session.settle()
        # Originate at the NON-primary site: a primary-site origin commits
        # locally without any round trip and would leave nothing to see.
        sites[1].transact(lambda: objs[1].set(1))
        residue = sites[1].protocol_residue()
        assert "unresolved-transactions" in residue
        assert "uncommitted-history" in residue
        session.settle()
        assert sites[1].protocol_residue() == {}


class TestMetricsDeterminism:
    def test_snapshots_identical_across_reruns(self):
        s1, _, _ = settled_session()
        s2, _, _ = settled_session()
        assert s1.metrics_snapshot() == s2.metrics_snapshot()

    def test_histogram_buckets_identical_across_reruns_of_same_seed(self):
        for seed in (0, 1, 7):
            a = run_trial(sample_config(seed, 0))
            b = run_trial(sample_config(seed, 0))
            for snap_a, snap_b in zip(a.session.metrics_snapshot(), b.session.metrics_snapshot()):
                assert snap_a["histograms"] == snap_b["histograms"]
                assert snap_a["counters"] == snap_b["counters"]

    def test_latency_histogram_populated_by_commits(self):
        session, sites, _ = settled_session(txns=5)
        merged_total = 0
        for snap in session.metrics_snapshot():
            hist = snap["histograms"].get("txn.commit_latency_ms")
            if hist:
                merged_total += hist["total"]
                assert sum(hist["counts"]) == hist["total"]
        commits = sum(s["counters"].get("txn.commits", 0) for s in session.metrics_snapshot())
        assert merged_total == commits >= 5

    def test_counters_agree_with_legacy_counters_api(self):
        session, sites, _ = settled_session()
        for site in sites:
            legacy = site.counters()
            snap = site.metrics.snapshot()["counters"]
            assert legacy["commits"] == snap.get("txn.commits", 0)
            assert legacy["aborts_conflict"] == snap.get("txn.aborts_conflict", 0)
            assert legacy["retries"] == snap.get("txn.retries", 0)
