"""Tests for adaptive optimism suppression (section 5.2.2's proposal)."""

import pytest

from repro import Session
from repro.core.adaptive import AdaptiveOptimismController
from repro import DInt


def contended_pair(latency=60.0, seed=0):
    session = Session.simulated(latency_ms=latency, seed=seed)
    alice, bob = session.add_sites(2)
    objs = session.replicate(DInt, "x", [alice, bob], initial=0)
    session.settle()
    return session, alice, bob, objs


class TestController:
    def test_validates_threshold(self):
        session, alice, _, _ = contended_pair()
        with pytest.raises(ValueError):
            AdaptiveOptimismController(alice, enter_threshold=0.0)

    def test_unsuppressed_is_transparent(self):
        session, alice, bob, objs = contended_pair()
        controller = AdaptiveOptimismController(alice)
        out = controller.transact(lambda: objs[0].set(1))
        session.settle()
        assert out.committed
        assert not controller.suppressed
        assert objs[1].get() == 1

    def test_conflict_rate_zero_initially(self):
        session, alice, _, _ = contended_pair()
        controller = AdaptiveOptimismController(alice)
        assert controller.conflict_rate() == 0.0

    def test_conflict_rate_reflects_retries(self):
        session, alice, bob, objs = contended_pair()
        controller = AdaptiveOptimismController(bob, enter_threshold=0.9)
        # Generate conflicts: alice and bob read-modify-write concurrently.
        for _ in range(6):
            alice.transact(lambda: objs[0].set(objs[0].get() + 1))
            controller.transact(lambda: objs[1].set(objs[1].get() + 1))
        session.settle()
        assert controller.conflict_rate() > 0.0

    def test_suppression_engages_under_contention(self):
        session, alice, bob, objs = contended_pair()
        controller = AdaptiveOptimismController(bob, window=6, enter_threshold=0.1)
        for _ in range(10):
            alice.transact(lambda: objs[0].set(objs[0].get() + 1))
            controller.transact(lambda: objs[1].set(objs[1].get() + 1))
        session.settle()
        assert controller.suppression_entries >= 1

    def test_suppressed_transactions_all_apply(self):
        session, alice, bob, objs = contended_pair()
        controller = AdaptiveOptimismController(bob, window=4, enter_threshold=0.05)
        outcomes = []
        for _ in range(12):
            alice.transact(lambda: objs[0].set(objs[0].get() + 1))
            outcomes.append(
                controller.transact(lambda: objs[1].set(objs[1].get() + 1))
            )
        session.settle()
        assert all(o.committed for o in outcomes)
        # Every increment from both sides took effect exactly once.
        assert objs[0].get() == objs[1].get() == 24

    def test_suppression_recovers(self):
        session, alice, bob, objs = contended_pair()
        controller = AdaptiveOptimismController(bob, window=4, enter_threshold=0.1)
        # Phase 1: contention drives suppression on.
        for _ in range(8):
            alice.transact(lambda: objs[0].set(objs[0].get() + 1))
            controller.transact(lambda: objs[1].set(objs[1].get() + 1))
        session.settle()
        engaged = controller.suppression_entries
        # Phase 2: calm, conflict-free blind writes restore optimism.
        for i in range(10):
            controller.transact(lambda v=i: objs[1].set(1000 + v))
            session.settle()
        assert not controller.suppressed
        assert engaged >= 1

    def test_explicit_exit_threshold(self):
        session, alice, _, _ = contended_pair()
        controller = AdaptiveOptimismController(
            alice, enter_threshold=0.4, exit_threshold=0.3
        )
        assert controller.exit_threshold == 0.3
        # Default is hysteresis at half the entry threshold.
        assert AdaptiveOptimismController(alice, enter_threshold=0.4).exit_threshold == 0.2

    def test_suppressed_submissions_queue_and_still_commit(self):
        session, alice, bob, objs = contended_pair()
        controller = AdaptiveOptimismController(bob)
        controller.suppressed = True  # force the serialized mode
        outcomes = [
            controller.transact(lambda: objs[1].set(objs[1].get() + 1))
            for _ in range(3)
        ]
        # The first launches via the pump; the rest wait their turn.
        assert controller.queued_peak >= 1
        assert controller.submitted == 3
        session.settle()
        assert all(o.committed for o in outcomes)
        assert objs[0].get() == objs[1].get() == 3

    def test_queued_outcome_is_live_before_execution(self):
        session, _, bob, objs = contended_pair()
        controller = AdaptiveOptimismController(bob)
        controller.suppressed = True
        first = controller.transact(lambda: objs[1].set(1))
        second = controller.transact(lambda: objs[1].set(2))
        # The second transaction has not executed yet, but its outcome
        # handle already exists and resolves once the queue drains.
        assert not second.committed
        session.settle()
        assert first.committed and second.committed

    def test_suppression_reduces_retries(self):
        """The point of the mechanism: serialized submission under
        contention produces fewer conflict retries than raw optimism."""

        def run(with_controller):
            session, alice, bob, objs = contended_pair(seed=9)
            submit = None
            if with_controller:
                controller = AdaptiveOptimismController(
                    bob, window=4, enter_threshold=0.05
                )
                submit = controller.transact
            else:
                submit = bob.transact
            before = session.counters()["retries"]
            for _ in range(15):
                alice.transact(lambda: objs[0].set(objs[0].get() + 1))
                submit(lambda: objs[1].set(objs[1].get() + 1))
                session.run_for(30)
            session.settle()
            assert objs[0].get() == 30
            return session.counters()["retries"] - before

        raw = run(False)
        governed = run(True)
        assert governed <= raw
