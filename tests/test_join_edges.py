"""Edge cases of the join protocol: uncommitted member state, conflicting
association updates, rejoin after leave, and clock staleness."""

import pytest

from repro import Session
from repro.sim.network import FixedLatency
from repro import DInt


class TestUncommittedMemberState:
    def test_joiner_waits_for_pending_commit(self):
        """B's exported state includes an uncommitted value; the joiner must
        not commit before that transaction does (B forwards the outcome)."""
        session = Session.simulated(latency_ms=40, delegation_enabled=False)
        alice, bob, carol = session.add_sites(3)
        # alice & bob share x; alice is primary.
        a_obj, b_obj = session.replicate(DInt, "x", [alice, bob], initial=1)
        session.settle()
        # bob writes; confirms from alice are slow, so bob's value stays
        # uncommitted a while.
        session.network.set_link_latency(0, 1, FixedLatency(400.0))
        bob.transact(lambda: b_obj.set(99))
        session.run_for(50)
        assert not b_obj.history.current().committed

        # carol joins via BOB (make bob the chosen member: bob's uid sorts
        # via min(site,uid); alice is site 0 so alice would be chosen —
        # instead invite through bob's association replica, which still
        # selects the min member... so verify против alice's copy instead:
        # alice's current value for x is ALSO uncommitted (propagate
        # arrived, commit pending).
        assoc_a = alice.objects["s0:x.assoc"]
        assoc_c = carol.import_invitation(assoc_a.make_invitation(), "x.assoc")
        session.settle()
        c_obj = carol.create_int("x", 0)
        out = carol.join(assoc_c, "x.rel", c_obj)
        session.run_for(100)
        # The join cannot commit while its RC dependency is outstanding.
        session.settle()
        assert out.committed
        assert c_obj.get() == 99
        assert c_obj.history.current().committed
        # And future updates reach carol.
        bob.transact(lambda: b_obj.set(100))
        session.settle()
        assert c_obj.get() == 100


class TestAssociationConflicts:
    def test_concurrent_assoc_updates_serialize(self):
        """Two joiners update the same association value concurrently; the
        assoc's primary serializes them via the normal RL machinery."""
        session = Session.simulated(latency_ms=30)
        alice, bob, carol = session.add_sites(3)
        objs = session.replicate(DInt, "x", [alice], initial=3)
        assoc = alice.objects["s0:x.assoc"]
        inv = assoc.make_invitation()
        assoc_b = bob.import_invitation(inv, "x.assoc")
        assoc_c = carol.import_invitation(inv, "x.assoc")
        session.settle()
        b_obj = bob.create_int("x", 0)
        c_obj = carol.create_int("x", 0)
        out_b = bob.join(assoc_b, "x.rel", b_obj)
        out_c = carol.join(assoc_c, "x.rel", c_obj)
        session.settle()
        assert out_b.committed and out_c.committed
        members = {uid for uid, _ in assoc.members("x.rel")}
        assert members == {objs[0].uid, b_obj.uid, c_obj.uid}
        assert b_obj.get() == c_obj.get() == 3


class TestLeaveRejoin:
    def test_leave_then_rejoin_same_object(self):
        session = Session.simulated(latency_ms=20)
        alice, bob = session.add_sites(2)
        a_obj, b_obj = session.replicate(DInt, "x", [alice, bob], initial=5)
        assoc_b = bob.objects["s1:x.assoc"]
        bob.leave(assoc_b, "x.rel", b_obj)
        session.settle()
        alice.transact(lambda: a_obj.set(6))
        session.settle()
        assert b_obj.get() == 5  # detached
        out = bob.join(assoc_b, "x.rel", b_obj)
        session.settle()
        assert out.committed
        assert b_obj.get() == 6  # resynced on rejoin
        bob.transact(lambda: b_obj.set(7))
        session.settle()
        assert a_obj.get() == 7

    def test_leave_is_visible_in_membership_everywhere(self):
        session = Session.simulated(latency_ms=20)
        sites = session.add_sites(3)
        objs = session.replicate(DInt, "x", sites, initial=0)
        assoc_2 = sites[2].objects["s2:x.assoc"]
        sites[2].leave(assoc_2, "x.rel", objs[2])
        session.settle()
        for i in (0, 1):
            assoc = sites[i].objects[f"s{i}:x.assoc"]
            members = {uid for uid, _ in assoc.members("x.rel")}
            assert objs[2].uid not in members
        # Graphs agree with the membership.
        assert objs[0].graph().sites() == [0, 1]


class TestClockStaleness:
    def test_stale_joiner_retries_transparently(self):
        """A joiner whose Lamport clock lags the member's state is denied
        once and transparently retries with a merged clock."""
        session = Session.simulated(latency_ms=20)
        alice = session.add_site()
        obj = alice.create_int("x", 0)
        assoc = alice.create_association("x.assoc")
        alice.transact(lambda: assoc.create_relationship("x.rel"))
        session.settle()
        alice.join(assoc, "x.rel", obj)
        # Busy alice: many transactions push her clock far ahead.
        for v in range(30):
            alice.transact(lambda vv=v: obj.set(vv))
        session.settle()
        bob = session.add_site()  # brand-new site, clock at zero
        assoc_b = bob.import_invitation(assoc.make_invitation(), "x.assoc")
        session.settle()
        b_obj = bob.create_int("x", 0)
        out = bob.join(assoc_b, "x.rel", b_obj)
        session.settle()
        assert out.committed
        assert b_obj.get() == 29
        assert out.attempts >= 1  # stale-VT denials retried internally
