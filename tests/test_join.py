"""Tests for dynamic collaboration establishment (paper sections 2.6 / 3.3)."""

import pytest

from repro import Session
from repro.errors import NotAuthorized
from repro import DInt


class TestInvitationFlow:
    """The full section 2.6 establishment sequence, step by step."""

    def test_manual_establishment(self):
        session = Session.simulated(latency_ms=20)
        alice, bob = session.add_sites(2, prefix="user")

        # A creates the object and a relationship, joins it, publishes an
        # invitation.
        balance_a = alice.create_int("balance", 100)
        assoc_a = alice.create_association("fin")
        alice.transact(lambda: assoc_a.create_relationship("balance-rel"))
        session.settle()
        alice.join(assoc_a, "balance-rel", balance_a)
        session.settle()
        invitation = assoc_a.make_invitation(note="insurance collaboration")
        assert invitation.inviter_site == alice.site_id

        # B imports the invitation and joins its own object.
        assoc_b = bob.import_invitation(invitation, "fin")
        session.settle()
        # The association value replicated: B discovers the relationship.
        assert assoc_b.relationships() == ["balance-rel"]
        balance_b = bob.create_int("balance", 0)
        outcome = bob.join(assoc_b, "balance-rel", balance_b)
        session.settle()
        assert outcome.committed
        # B adopted A's value.
        assert balance_b.get() == 100
        # Membership is visible on both sides.
        members_a = {uid for uid, _ in assoc_a.members("balance-rel")}
        members_b = {uid for uid, _ in assoc_b.members("balance-rel")}
        assert members_a == members_b == {balance_a.uid, balance_b.uid}

    def test_updates_flow_after_join(self):
        session = Session.simulated(latency_ms=20)
        alice, bob = session.add_sites(2)
        a, b = session.replicate(DInt, "x", [alice, bob], initial=1)
        bob.transact(lambda: b.set(5))
        session.settle()
        assert a.get() == 5

    def test_join_nonexistent_relationship_aborts(self):
        session = Session.simulated(latency_ms=20)
        alice = session.add_site()
        obj = alice.create_int("x")
        assoc = alice.create_association("assoc")
        outcome = alice.join(assoc, "no-such-rel", obj)
        session.settle()
        assert outcome.aborted_no_retry

    def test_three_party_chain(self):
        """Replica relations are transitive: C joins via the same relationship
        and sees values from A."""
        session = Session.simulated(latency_ms=20)
        sites = session.add_sites(3)
        objs = session.replicate(DInt, "x", sites, initial=7)
        assert [o.get() for o in objs] == [7, 7, 7]
        sites[2].transact(lambda: objs[2].set(9))
        session.settle()
        assert [o.get() for o in objs] == [9, 9, 9]

    def test_late_joiner_adopts_current_state(self):
        session = Session.simulated(latency_ms=20)
        alice, bob, carol = session.add_sites(3)
        a, b = session.replicate(DInt, "x", [alice, bob], initial=0)
        alice.transact(lambda: a.set(41))
        session.settle()
        # Carol joins after activity.
        assoc_a = alice.objects["s0:x.assoc"]
        invitation = assoc_a.make_invitation()
        assoc_c = carol.import_invitation(invitation, "x.assoc")
        session.settle()
        c = carol.create_int("x", 0)
        carol.join(assoc_c, "x.rel", c)
        session.settle()
        assert c.get() == 41
        # And the newcomer can write.
        carol.transact(lambda: c.set(42))
        session.settle()
        assert [a.get(), b.get(), c.get()] == [42, 42, 42]

    def test_join_composite_with_state(self):
        """A late joiner of a list relationship receives the slots with their
        original identities, so subsequent child updates resolve."""
        session = Session.simulated(latency_ms=20)
        alice, bob = session.add_sites(2)
        la = alice.create_list("doc")
        assoc = alice.create_association("doc.assoc")
        alice.transact(lambda: assoc.create_relationship("doc.rel"))
        session.settle()
        alice.join(assoc, "doc.rel", la)
        session.settle()
        alice.transact(lambda: [la.append("string", w) for w in ("hello", "world")])
        session.settle()
        # Bob joins late.
        assoc_b = bob.import_invitation(assoc.make_invitation(), "doc.assoc")
        session.settle()
        lb = bob.create_list("doc")
        bob.join(assoc_b, "doc.rel", lb)
        session.settle()
        assert lb.value_at(lb.current_value_vt()) == ["hello", "world"]
        # Child updates initiated at alice resolve at bob via the imported
        # slot identities.
        def edit():
            la.child_at(1).set("decaf")

        alice.transact(edit)
        session.settle()
        assert lb.value_at(lb.current_value_vt()) == ["hello", "decaf"]
        # And bob can edit too.
        bob.transact(lambda: lb.child_at(0).set("hi"))
        session.settle()
        assert la.value_at(la.current_value_vt()) == ["hi", "decaf"]


class TestLeave:
    def test_leave_stops_propagation(self):
        session = Session.simulated(latency_ms=20)
        alice, bob = session.add_sites(2)
        a, b = session.replicate(DInt, "x", [alice, bob], initial=0)
        assoc_b = bob.objects["s1:x.assoc"]
        outcome = bob.leave(assoc_b, "x.rel", b)
        session.settle()
        assert outcome.committed
        alice.transact(lambda: a.set(99))
        session.settle()
        assert a.get() == 99
        assert b.get() == 0  # no longer mirrored

    def test_leaver_can_write_independently(self):
        session = Session.simulated(latency_ms=20)
        alice, bob = session.add_sites(2)
        a, b = session.replicate(DInt, "x", [alice, bob], initial=0)
        assoc_b = bob.objects["s1:x.assoc"]
        bob.leave(assoc_b, "x.rel", b)
        session.settle()
        bob.transact(lambda: b.set(123))
        session.settle()
        assert b.get() == 123
        assert a.get() == 0

    def test_membership_updated_after_leave(self):
        session = Session.simulated(latency_ms=20)
        alice, bob = session.add_sites(2)
        a, b = session.replicate(DInt, "x", [alice, bob], initial=0)
        assoc_a = alice.objects["s0:x.assoc"]
        assoc_b = bob.objects["s1:x.assoc"]
        bob.leave(assoc_b, "x.rel", b)
        session.settle()
        members = {uid for uid, _ in assoc_a.members("x.rel")}
        assert members == {a.uid}


class TestConcurrentJoins:
    def test_two_simultaneous_joiners_serialize(self):
        """Concurrent joins to the same relationship conflict at the graph
        primary; retries serialize them and all three replicas converge."""
        session = Session.simulated(latency_ms=20)
        alice, bob, carol = session.add_sites(3)
        a_obj = alice.create_int("x", 5)
        assoc = alice.create_association("x.assoc")
        alice.transact(lambda: assoc.create_relationship("x.rel"))
        session.settle()
        alice.join(assoc, "x.rel", a_obj)
        session.settle()
        invitation = assoc.make_invitation()
        assoc_b = bob.import_invitation(invitation, "x.assoc")
        assoc_c = carol.import_invitation(invitation, "x.assoc")
        session.settle()
        b_obj = bob.create_int("x", 0)
        c_obj = carol.create_int("x", 0)
        out_b = bob.join(assoc_b, "x.rel", b_obj)
        out_c = carol.join(assoc_c, "x.rel", c_obj)  # concurrent!
        session.settle()
        assert out_b.committed and out_c.committed
        assert b_obj.get() == 5 and c_obj.get() == 5
        # All three graphs agree.
        assert a_obj.graph().sites() == b_obj.graph().sites() == c_obj.graph().sites()
        assert len(a_obj.graph()) == 3
        # Updates reach everyone.
        carol.transact(lambda: c_obj.set(6))
        session.settle()
        assert [a_obj.get(), b_obj.get(), c_obj.get()] == [6, 6, 6]


class TestEmbeddedJoin:
    def test_embedded_object_switches_to_direct_propagation(self):
        """The Fig. 7 case: a node embedded in a composite joins its own
        collaboration; it gets its own replication graph."""
        session = Session.simulated(latency_ms=20)
        alice, bob = session.add_sites(2)
        doc = alice.create_list("doc")
        holder = []
        alice.transact(lambda: holder.append(doc.append("int", 10)))
        session.settle()
        cell = holder[0]
        assert not cell.has_own_graph()

        # The embedded cell joins a collaboration with bob's standalone obj.
        assoc = alice.create_association("cell.assoc")
        alice.transact(lambda: assoc.create_relationship("cell.rel"))
        session.settle()
        alice.join(assoc, "cell.rel", cell)
        session.settle()
        assert cell.has_own_graph()

        assoc_b = bob.import_invitation(assoc.make_invitation(), "cell.assoc")
        session.settle()
        b_obj = bob.create_int("cell", 0)
        outcome = bob.join(assoc_b, "cell.rel", b_obj)
        session.settle()
        assert outcome.committed
        assert b_obj.get() == 10

        # Updates to the embedded cell now propagate directly to bob's
        # standalone object (which is NOT part of doc's tree).
        alice.transact(lambda: cell.set(11))
        session.settle()
        assert b_obj.get() == 11
        # And the reverse direction updates the cell inside the doc.
        bob.transact(lambda: b_obj.set(12))
        session.settle()
        assert doc.value_at(doc.current_value_vt()) == [12]


class TestJoinAuthorization:
    def test_join_denied_by_monitor(self):
        from repro.core.auth import PredicateMonitor

        session = Session.simulated(latency_ms=20)
        alice, bob = session.add_sites(2)
        a_obj = alice.create_int("x", 5)
        assoc = alice.create_association("x.assoc")
        alice.transact(lambda: assoc.create_relationship("x.rel"))
        session.settle()
        alice.join(assoc, "x.rel", a_obj)
        session.settle()
        a_obj.set_authorization(PredicateMonitor(join=lambda principal, obj: False))
        assoc_b = bob.import_invitation(assoc.make_invitation(), "x.assoc")
        session.settle()
        b_obj = bob.create_int("x", 0)
        outcome = bob.join(assoc_b, "x.rel", b_obj)
        session.settle()
        assert not outcome.committed
        assert b_obj.get() == 0
        assert b_obj.graph().is_singleton()
