"""Unit tests for message batching and op application (core.propagation)."""

import pytest

from repro import Session
from repro.core import propagation
from repro.core.messages import OpPayload, SlotId
from repro.core.transaction import TransactionContext, TxnRecord, TransactionOutcome
from repro.errors import InvalidPath, ProtocolError
from repro.vtime import VirtualTime
from repro import DInt, DList


def three_party():
    session = Session.simulated(latency_ms=10)
    sites = session.add_sites(3)
    objs = session.replicate(DInt, "x", sites, initial=0)
    session.settle()
    return session, sites, objs


def record_for(site, body):
    """Execute a body under a real context and return its TxnRecord."""
    vt = site.clock.tick()
    ctx = TransactionContext(site, vt)
    with site.install_txn(ctx):
        body()
    return TxnRecord(vt=vt, txn=None, ctx=ctx, outcome=TransactionOutcome())


class TestBuildBatches:
    def test_write_goes_to_every_replica_site(self):
        session, sites, objs = three_party()
        record = record_for(sites[0], lambda: objs[0].set(5))
        batches, primaries = propagation.build_batches(record, sites[0])
        assert set(batches) == {1, 2}
        for dst, (writes, checks) in batches.items():
            assert len(writes) == 1 and not checks
            assert writes[0].op.kind == "set"

    def test_read_check_goes_to_primary_only(self):
        session, sites, objs = three_party()
        # Origin is site 1; primary is site 0; read-only transaction.
        record = record_for(sites[1], lambda: objs[1].get())
        batches, primaries = propagation.build_batches(record, sites[1])
        assert set(batches) == {0}
        writes, checks = batches[0]
        assert not writes and len(checks) == 1
        assert 0 in primaries

    def test_read_write_mix(self):
        session, sites, objs = three_party()
        ys = session.replicate(DInt, "y", sites, initial=0)
        session.settle()

        def body():
            _ = objs[1].get()       # read-only
            ys[1].set(7)            # write

        record = record_for(sites[1], body)
        batches, _ = propagation.build_batches(record, sites[1])
        writes0, checks0 = batches[0]  # primary site gets both
        assert len(writes0) == 1 and len(checks0) == 1
        writes2, checks2 = batches[2]  # plain replica gets only the write
        assert len(writes2) == 1 and not checks2

    def test_local_only_object_produces_no_batches(self):
        session, sites, objs = three_party()
        private = sites[0].create_int("private", 0)
        record = record_for(sites[0], lambda: private.set(1))
        batches, primaries = propagation.build_batches(record, sites[0])
        assert batches == {}
        assert set(primaries) == {0}

    def test_child_write_addressed_root_relative(self):
        session, sites, _ = three_party()
        lists = session.replicate(DList, "doc", sites[:2])
        session.settle()
        holder = []
        sites[0].transact(lambda: holder.append(lists[0].append("int", 1)))
        session.settle()
        child = holder[0]
        record = record_for(sites[0], lambda: child.set(2))
        batches, _ = propagation.build_batches(record, sites[0])
        writes, _checks = batches[1]
        assert writes[0].object_uid == lists[1].uid  # the REMOTE root uid
        assert len(writes[0].path) == 1


class TestApplyOp:
    def test_unknown_kind_rejected(self):
        session = Session()
        site = session.add_site()
        x = site.create_int("x")
        with pytest.raises(ProtocolError):
            propagation.apply_op(x, OpPayload(kind="warp", args=()), site.clock.tick(), False)

    def test_type_mismatch_rejected(self):
        session = Session()
        site = session.add_site()
        x = site.create_int("x")
        with pytest.raises(ProtocolError):
            propagation.apply_op(
                x, OpPayload(kind="insert", args=(None, ("int", 1), 0)), site.clock.tick(), False
            )

    def test_committed_apply_marks_entry(self):
        session = Session()
        site = session.add_site()
        x = site.create_int("x")
        vt = site.clock.tick()
        propagation.apply_op(x, OpPayload(kind="set", args=(9,)), vt, committed=True)
        assert x.history.entry_at(vt).committed

    def test_undo_then_commit_roundtrip(self):
        session = Session()
        site = session.add_site()
        x = site.create_int("x", 1)
        vt = site.clock.tick()
        op = OpPayload(kind="set", args=(2,))
        propagation.apply_op(x, op, vt, committed=False)
        assert x.get() == 2
        propagation.undo_op(x, op, vt)
        assert x.get() == 1


class TestResolvePath:
    def test_resolves_nested(self):
        session = Session()
        site = session.add_site()
        lst = site.create_list("l")
        holder = []
        site.transact(lambda: holder.append(lst.append("map", {"k": ("int", 1)})))
        inner = holder[0]

        def body():
            holder.append(inner.child("k"))

        site.transact(body)
        leaf = holder[1]
        resolved = propagation.resolve_path(lst, leaf.path_from_root())
        assert resolved is leaf

    def test_missing_step_raises_invalid_path(self):
        session = Session()
        site = session.add_site()
        lst = site.create_list("l")
        from repro.core.messages import PathStep

        ghost = PathStep(key=None, embed_vt=SlotId(VirtualTime(99, 9), 0))
        with pytest.raises(InvalidPath):
            propagation.resolve_path(lst, (ghost,))

    def test_descending_into_scalar_is_protocol_error(self):
        session = Session()
        site = session.add_site()
        x = site.create_int("x")
        from repro.core.messages import PathStep

        step = PathStep(key=None, embed_vt=SlotId(VirtualTime(1, 0), 0))
        with pytest.raises(ProtocolError):
            propagation.resolve_path(x, (step,))
