"""Tests for session wiring and helpers."""

import pytest

from repro import Session
from repro.core.repgraph import GraphNode
from repro.errors import ReproError
from repro.transport import MemoryTransport, SimTransport
from repro import DFloat, DInt, DList, DMap, DString


class TestConstruction:
    def test_default_memory_transport(self):
        session = Session()
        assert isinstance(session.transport, MemoryTransport)
        assert session.scheduler is None

    def test_simulated_factory(self):
        session = Session.simulated(latency_ms=10.0, seed=3)
        assert isinstance(session.transport, SimTransport)
        assert session.scheduler is not None
        assert session.network is not None

    def test_site_ids_sequential(self):
        session = Session()
        sites = session.add_sites(3)
        assert [s.site_id for s in sites] == [0, 1, 2]

    def test_site_names(self):
        session = Session()
        sites = session.add_sites(3, prefix="user")
        assert [s.name for s in sites] == ["user0", "user1", "user2"]
        more = session.add_sites(2, prefix="user")
        assert [s.name for s in more] == ["user3", "user4"]

    def test_roster_updated_on_all_sites(self):
        session = Session()
        a = session.add_site()
        b = session.add_site()
        assert a.roster == b.roster == {0, 1}

    def test_custom_primary_selector(self):
        # Select the maximum node instead of the minimum: primaries land on
        # the highest site.
        session = Session.simulated(
            latency_ms=10.0, primary_selector=lambda g: max(g.nodes)
        )
        alice, bob = session.add_sites(2)
        objs = session.replicate(DInt, "x", [alice, bob], initial=0)
        assert objs[0].primary_site() == 1

    def test_counters_aggregate(self):
        session = Session.simulated(latency_ms=10.0)
        alice, bob = session.add_sites(2)
        objs = session.replicate(DInt, "x", [alice, bob], initial=0)
        alice.transact(lambda: objs[0].set(1))
        session.settle()
        counters = session.counters()
        assert counters["commits"] >= 1
        assert "lost_updates" in counters


class TestReplicateHelper:
    @pytest.mark.parametrize(
        "kind,initial,expected",
        [
            (DInt, 7, 7),
            (DFloat, 2.5, 2.5),
            (DString, "hi", "hi"),
        ],
    )
    def test_scalar_kinds(self, kind, initial, expected):
        session = Session.simulated(latency_ms=10.0)
        sites = session.add_sites(2)
        objs = session.replicate(kind, "obj", sites, initial=initial)
        assert [o.get() for o in objs] == [expected, expected]

    def test_string_kind_emits_deprecation_warning(self):
        # The legacy string spelling still works but is on a removal
        # schedule; the warning names the replacement class and the date.
        session = Session.simulated(latency_ms=10.0)
        sites = session.add_sites(2)
        with pytest.warns(DeprecationWarning, match=r"removed on 2026-12-31"):
            objs = session.replicate("int", "obj", sites, initial=3)
        assert [o.get() for o in objs] == [3, 3]

    def test_composite_kinds(self):
        session = Session.simulated(latency_ms=10.0)
        sites = session.add_sites(2)
        lists = session.replicate(DList, "l", sites)
        maps = session.replicate(DMap, "m", sites)
        sites[0].transact(lambda: lists[0].append("int", 1))
        sites[1].transact(lambda: maps[1].put("k", "int", 2))
        session.settle()
        assert lists[1].value_at(lists[1].current_value_vt()) == [1]
        assert maps[0].value_at(maps[0].current_value_vt()) == {"k": 2}

    def test_replication_is_committed_on_return(self):
        session = Session.simulated(latency_ms=10.0)
        sites = session.add_sites(3)
        objs = session.replicate(DInt, "x", sites, initial=0)
        for obj in objs:
            assert obj.graph_history().current().committed
            assert len(obj.graph()) == 3

    def test_unknown_kind_rejected(self):
        session = Session()
        site = session.add_site()
        with pytest.raises(ReproError):
            session.replicate("blob", "x", [site])

    def test_empty_sites_rejected(self):
        session = Session()
        with pytest.raises(ReproError):
            session.replicate(DInt, "x", [])

    def test_run_for_requires_sim(self):
        session = Session()
        with pytest.raises(ReproError):
            session.run_for(10.0)


class TestMemoryTransportSessions:
    def test_whole_stack_on_memory_transport(self):
        """The protocol works synchronously over the zero-latency transport."""
        session = Session()
        alice, bob = session.add_sites(2)
        objs = session.replicate(DInt, "x", [alice, bob], initial=5)
        alice.transact(lambda: objs[0].set(6))
        assert objs[1].get() == 6
        assert objs[1].history.current().committed
