"""Schema validation for the timeline exporters (repro.obs.export).

The acceptance bar: a full explorer trial exports Chrome trace-event JSON
that Perfetto accepts — every committed transaction has a complete
submit→commit span, every abort span ends in ``aborted``, and span/event
timestamps are monotonic per site track.  Also checks JSONL structure and
byte-determinism of both exporters.
"""

import json

from repro.explore import run_trial, sample_config
from repro.obs import build_spans, chrome_trace_json, to_chrome_trace, to_jsonl

#: Chrome trace-event phases this exporter may legally emit.
ALLOWED_PHASES = {"M", "i", "X"}


def observed_trial(seed=0, index=0, **kwargs):
    config = sample_config(seed, index, **kwargs)
    return run_trial(config, observe=True)


class TestChromeTraceSchema:
    def setup_method(self):
        self.result = observed_trial()
        self.events = list(self.result.events)
        self.document = to_chrome_trace(self.events)

    def test_top_level_shape(self):
        assert isinstance(self.document["traceEvents"], list)
        assert self.document["displayTimeUnit"] == "ms"
        # Must be valid JSON end to end (Perfetto's first requirement).
        json.loads(chrome_trace_json(self.events))

    def test_every_entry_is_well_formed(self):
        for entry in self.document["traceEvents"]:
            assert entry["ph"] in ALLOWED_PHASES
            assert isinstance(entry["pid"], int)
            assert isinstance(entry["tid"], int)
            assert isinstance(entry["name"], str) and entry["name"]
            if entry["ph"] != "M":
                assert isinstance(entry["ts"], int) and entry["ts"] >= 0
            if entry["ph"] == "X":
                assert isinstance(entry["dur"], int) and entry["dur"] >= 1

    def test_every_site_has_metadata_track_names(self):
        sites = {e.site for e in self.events}
        meta = [e for e in self.document["traceEvents"] if e["ph"] == "M"]
        named = {(m["pid"], m["name"], m["args"]["name"]) for m in meta}
        for site in sites:
            assert (site, "process_name", f"site {site}") in named

    def test_committed_txns_have_complete_spans(self):
        spans = build_spans(self.events)
        committed = [s for s in spans if s.resolution == "committed"]
        assert committed, "a healthy trial must commit transactions"
        slices = {
            e["name"]: e for e in self.document["traceEvents"] if e["ph"] == "X"
        }
        for span in committed:
            assert span.complete, f"committed span {span.vt} missing submit"
            assert span.submit_ms is not None and span.resolved_ms is not None
            entry = slices[f"txn {span.vt} [committed]"]
            assert entry["pid"] == span.origin
            assert entry["args"]["resolution"] == "committed"

    def test_abort_spans_end_aborted(self):
        # The rmw workload under contention produces aborts; if this seed
        # has none, the invariant holds vacuously but we assert on a seed
        # known to retry (sample 0 does).
        spans = build_spans(self.events)
        aborted = [s for s in spans if s.resolution == "aborted"]
        assert aborted, "seed 0 trial 0 is known to produce conflict aborts"
        for span in aborted:
            assert span.events[-1].kind in ("aborted", "view_notified")
            assert span.abort_reason is not None
            entry_name = f"txn {span.vt} [aborted]"
            matches = [
                e for e in self.document["traceEvents"]
                if e["ph"] == "X" and e["name"] == entry_name
            ]
            assert len(matches) == 1

    def test_timestamps_monotonic_per_site_track(self):
        last = {}
        for entry in self.document["traceEvents"]:
            if entry["ph"] == "M":
                continue
            key = (entry["pid"], entry["tid"])
            assert entry["ts"] >= last.get(key, 0), f"ts regressed on track {key}"
            last[key] = entry["ts"]

    def test_span_slices_nest_within_trial_time(self):
        horizon = max(e.time_ms for e in self.events) * 1000 + 1
        for entry in self.document["traceEvents"]:
            if entry["ph"] == "X":
                assert entry["ts"] + entry["dur"] <= horizon + 1000


class TestExportDeterminism:
    def test_chrome_trace_is_byte_identical_across_runs(self):
        a = chrome_trace_json(observed_trial().events)
        b = chrome_trace_json(observed_trial().events)
        assert a == b

    def test_jsonl_is_byte_identical_and_line_valid(self):
        a = to_jsonl(observed_trial().events)
        b = to_jsonl(observed_trial().events)
        assert a == b
        lines = a.strip().split("\n")
        assert lines
        seqs = []
        for line in lines:
            record = json.loads(line)
            assert {"seq", "time_ms", "site", "kind", "txn_vt", "data"} <= set(record)
            seqs.append(record["seq"])
        assert seqs == sorted(seqs)

    def test_empty_stream_exports(self):
        assert to_jsonl([]) == ""
        document = to_chrome_trace([])
        assert document["traceEvents"] == []
        json.loads(chrome_trace_json([]))

    def test_empty_timeline_chrome_trace_is_loadable_and_stable(self):
        # An empty timeline must still export a structurally valid,
        # byte-stable Chrome trace document (no metadata for phantom
        # sites, no slices), so tooling can open "nothing happened" runs.
        payload = chrome_trace_json([])
        assert payload == chrome_trace_json([])
        document = json.loads(payload)
        assert document["traceEvents"] == []
        assert document["displayTimeUnit"] == "ms"
        assert payload.endswith("\n") or payload == json.dumps(document)
