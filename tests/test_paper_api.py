"""Paper-API conformance: the figures' code, line for line.

These tests transliterate the paper's Java listings (Fig. 2 XferTrans and
Fig. 3 BalanceView) into the library's API and assert the documented
behaviours, so the public surface demonstrably supports the paper's
programming model.
"""

import pytest

from repro import Session, Transaction, View
from repro import DFloat


class XferTrans(Transaction):
    """Fig. 2, transliterated.

    class XferTrans implements Transaction {
        XferTrans(DecafFloat Ap, DecafFloat Bp, float xferAmt) {...}
        public void execute() {
            if (Ap - xferAmt >= 0) {
                Ap.setValueTo(Ap.floatValue() - xferAmt);
                Bp.setValueTo(Bp.floatValue() + xferAmt);
            } else { throw new RuntimeException("Can't transfer more than balance"); }
        }
        public void handleAbort(Exception e) {...}
    }
    """

    def __init__(self, Ap, Bp, xferAmt):
        self.Ap = Ap
        self.Bp = Bp
        self.xferAmt = xferAmt
        self.aborted_with = None

    def execute(self):
        if self.Ap.get() - self.xferAmt >= 0:
            self.Ap.set(self.Ap.get() - self.xferAmt)
            self.Bp.set(self.Bp.get() + self.xferAmt)
        else:
            raise RuntimeError("Can't transfer more than balance")

    def handle_abort(self, e):
        self.aborted_with = e


class BalanceView(View):
    """Fig. 3, transliterated.

    class BalanceView extends TextField implements OptView {
        BalanceView(DecafFloat Bp, ...) { Bp.attach(this); }
        public void update(...) { setForeground(RED); setText(acctBal); }
        public void commit()    { setForeground(BLACK); }
    }
    """

    def __init__(self, Bp):
        self.Bp = Bp
        self.foreground = "black"
        self.text = ""
        Bp.attach(self, "optimistic")

    def update(self, changed, snapshot):
        self.foreground = "red"
        self.text = str(snapshot.read(self.Bp))

    def commit(self):
        self.foreground = "black"


@pytest.fixture()
def accounts():
    session = Session.simulated(latency_ms=50.0, delegation_enabled=False)
    a1, a2 = session.add_sites(2)
    Ap = session.replicate(DFloat, "A", [a1, a2], initial=100.0)
    Bp = session.replicate(DFloat, "B", [a1, a2], initial=0.0)
    session.settle()
    return session, a1, a2, Ap, Bp


class TestFig2:
    def test_successful_transfer_is_atomic(self, accounts):
        session, a1, a2, Ap, Bp = accounts
        txn = XferTrans(Ap[1], Bp[1], 30.0)
        outcome = a2.run(txn)
        session.settle()
        assert outcome.committed
        assert Ap[0].get() == 70.0 and Bp[0].get() == 30.0
        assert txn.aborted_with is None

    def test_overdraft_calls_handle_abort(self, accounts):
        session, a1, a2, Ap, Bp = accounts
        txn = XferTrans(Ap[1], Bp[1], 500.0)
        outcome = a2.run(txn)
        session.settle()
        # "In case of an abort due to uncaught exception, the transaction
        # is not retried and ... handleAbort() is called" (section 2.4).
        assert outcome.aborted_no_retry
        assert outcome.attempts == 1
        assert str(txn.aborted_with) == "Can't transfer more than balance"
        assert Ap[0].get() == 100.0 and Bp[0].get() == 0.0

    def test_faulty_application_cannot_corrupt_state(self, accounts):
        """"Faulty applications will not be able to create inconsistent
        states or crash the entire application."""
        session, a1, a2, Ap, Bp = accounts

        class Faulty(Transaction):
            def execute(self):
                Ap[1].set(-999.0)
                raise KeyError("bug in application code")

        outcome = a2.run(Faulty())
        session.settle()
        assert outcome.aborted_no_retry
        assert Ap[1].get() == 100.0  # the partial write was rolled back
        # The runtime survived; further transactions work.
        assert a2.run(XferTrans(Ap[1], Bp[1], 10.0)) is not None
        session.settle()
        assert Bp[0].get() == 10.0


class TestFig3:
    def test_red_while_optimistic_black_after_commit(self, accounts):
        session, a1, a2, Ap, Bp = accounts
        view = BalanceView(Bp[1])
        session.settle()
        a2.run(XferTrans(Ap[1], Bp[1], 25.0))
        # Immediately after local execution: red (uncommitted).
        assert view.foreground == "red"
        assert view.text == "25.0"
        session.settle()
        # After commit: black.
        assert view.foreground == "black"
        assert view.text == "25.0"

    def test_aborted_transfer_reverts_display(self, accounts):
        session, a1, a2, Ap, Bp = accounts
        view = BalanceView(Bp[0])  # the view lives at the OTHER site
        session.settle()
        # A conflicting pair: site 1 and site 2 both transfer concurrently.
        a1.run(XferTrans(Ap[0], Bp[0], 60.0))
        a2.run(XferTrans(Ap[1], Bp[1], 60.0))
        session.settle()
        # One committed, one re-executed and failed (insufficient funds) or
        # both serialized if funds sufficed; the display always ends on the
        # committed value, in black.
        assert view.foreground == "black"
        assert float(view.text) == Bp[0].get()
        assert Ap[0].get() >= 0.0
