"""Contract tests for the benchmark suite itself.

The CLI (`repro.cli`) and EXPERIMENTS.md both rely on structural
conventions across `benchmarks/bench_e*.py`; these tests pin them so a new
experiment cannot silently break the tooling.
"""

import importlib.util
import os

import pytest

from repro.bench.report import Table


def bench_modules():
    directory = os.path.join(os.path.dirname(os.path.dirname(__file__)), "benchmarks")
    out = []
    for name in sorted(os.listdir(directory)):
        if name.startswith("bench_e") and name.endswith(".py"):
            out.append(os.path.join(directory, name))
    return out


def load(path):
    name = "contract_" + os.path.splitext(os.path.basename(path))[0]
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestBenchConventions:
    def test_all_thirteen_experiments_present(self):
        ids = {os.path.basename(p).split("_")[1] for p in bench_modules()}
        assert ids == {f"e{i}" for i in range(1, 14)}

    def test_every_bench_has_run_experiment_and_doc(self):
        for path in bench_modules():
            module = load(path)
            assert hasattr(module, "run_experiment"), path
            assert (module.__doc__ or "").strip(), path
            # The docstring names the paper section it reproduces.
            assert "section" in module.__doc__ or "§" in module.__doc__, path

    def test_every_bench_has_one_pytest_entry(self):
        for path in bench_modules():
            module = load(path)
            tests = [n for n in dir(module) if n.startswith("test_")]
            assert len(tests) == 1, path

    @pytest.mark.parametrize(
        "exp", ["bench_e1_commit_latency.py", "bench_e8_indirect.py"]
    )
    def test_run_experiment_returns_table_first(self, exp):
        path = next(p for p in bench_modules() if p.endswith(exp))
        result = load(path).run_experiment()
        table = result[0] if isinstance(result, tuple) else result
        assert isinstance(table, Table)
        assert table.rows


class TestResultsArtifacts:
    def test_results_written_by_suite(self):
        directory = os.path.join(
            os.path.dirname(os.path.dirname(__file__)), "benchmarks", "results"
        )
        if not os.path.isdir(directory):
            pytest.skip("benchmarks not yet run")
        names = os.listdir(directory)
        assert any(name.startswith("E1") for name in names)
        assert any(name.startswith("E6") for name in names)
