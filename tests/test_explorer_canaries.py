"""Mutation canaries: prove the explorer's oracles have teeth.

Each canary flips a test-only flag that breaks one protocol obligation:

``skip_rl_check``     RL (read-last) guesses validate unconditionally, so
                      stale reads commit — serializability is lost.
``skip_nc_check``     NC (no-change) interval checks validate
                      unconditionally, so snapshots taken over intervals
                      with intervening committed writes are confirmed.
``views_pre_commit``  pessimistic views deliver snapshots before commit,
                      so uncommitted (possibly later aborted) state leaks
                      into committed-only views.

A sound oracle battery must flag each mutant within a small trial budget;
these tests pin that detection (empirically all three trip on trial 0 of
the seed-0 campaign — the budget leaves margin).  The same budget on the
healthy protocol must stay clean, so detection is attributable to the
mutation alone.
"""

import pytest

from repro.explore import run_campaign

#: mutation flag -> oracles allowed to report it (detection may use any).
CANARIES = {
    "skip_rl_check": {"effect", "convergence", "optimistic", "pessimistic", "status"},
    "skip_nc_check": {"effect", "convergence", "optimistic", "pessimistic", "status"},
    "views_pre_commit": {"pessimistic"},
}

#: Trials each canary must be caught within (all trip on trial 0 today).
DETECTION_BUDGET = 10


@pytest.mark.parametrize("mutation", sorted(CANARIES))
def test_canary_detected_within_budget(mutation):
    result = run_campaign(
        trials=DETECTION_BUDGET,
        seed=0,
        mutations=(mutation,),
        stop_at_first=True,
    )
    assert result.failures, (
        f"mutation {mutation!r} survived {DETECTION_BUDGET} trials undetected"
    )
    failure = result.failures[0]
    oracles = {v.oracle for v in failure.violations}
    assert oracles <= CANARIES[mutation], (
        f"unexpected oracles {oracles - CANARIES[mutation]} for {mutation!r}"
    )


def test_healthy_protocol_clean_on_same_budget():
    result = run_campaign(trials=DETECTION_BUDGET, seed=0)
    assert result.ok, result.summary()


def test_mutations_recorded_in_violating_config():
    result = run_campaign(
        trials=DETECTION_BUDGET,
        seed=0,
        mutations=("views_pre_commit",),
        stop_at_first=True,
    )
    assert result.failures
    assert result.failures[0].config.mutations == ("views_pre_commit",)
