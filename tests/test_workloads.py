"""Tests for workload generators and the workload runner."""

import random

import pytest

from repro import Session
from repro.errors import ReproError
from repro import DInt
from repro.workloads import (
    BlindWriteWorkload,
    PoissonArrivals,
    ReadModifyWriteWorkload,
    TransferWorkload,
    UniformArrivals,
    WorkloadParty,
    run_workload,
)


class TestArrivals:
    def test_uniform_spacing(self):
        times = UniformArrivals(100.0).times(5, random.Random(0))
        assert times == [100.0, 200.0, 300.0, 400.0, 500.0]

    def test_uniform_start_offset(self):
        times = UniformArrivals(10.0, start_ms=1000.0).times(2, random.Random(0))
        assert times == [1010.0, 1020.0]

    def test_uniform_validates(self):
        with pytest.raises(ValueError):
            UniformArrivals(0)

    def test_poisson_mean(self):
        rng = random.Random(42)
        times = PoissonArrivals(100.0).times(2000, rng)
        intervals = [b - a for a, b in zip([0.0] + times, times)]
        mean = sum(intervals) / len(intervals)
        assert 90.0 < mean < 110.0

    def test_poisson_monotone(self):
        times = PoissonArrivals(50.0).times(100, random.Random(1))
        assert all(earlier < later for earlier, later in zip(times, times[1:]))

    def test_poisson_deterministic_per_seed(self):
        a = PoissonArrivals(50.0).times(10, random.Random(7))
        b = PoissonArrivals(50.0).times(10, random.Random(7))
        assert a == b

    def test_poisson_validates(self):
        with pytest.raises(ValueError):
            PoissonArrivals(-1.0)


class TestWorkloadBodies:
    def _site_obj(self):
        session = Session.simulated(latency_ms=10)
        site = session.add_site()
        obj = site.create_int("x", 0)
        return session, site, obj

    def test_blind_write_values_unique_per_party(self):
        session, site, obj = self._site_obj()
        wl = BlindWriteWorkload(obj, party_tag=3)
        site.transact(wl())
        first = obj.get()
        site.transact(wl())
        second = obj.get()
        assert first != second
        assert first // 1_000_000 == second // 1_000_000 == 3

    def test_rmw_increments(self):
        session, site, obj = self._site_obj()
        wl = ReadModifyWriteWorkload(obj, increment=5)
        site.transact(wl())
        site.transact(wl())
        assert obj.get() == 10

    def test_transfer_workload(self):
        session = Session.simulated(latency_ms=10)
        site = session.add_site()
        src = site.create_int("src", 100)
        dst = site.create_int("dst", 0)
        wl = TransferWorkload(src, dst, amount=10)
        site.transact(wl())
        assert (src.get(), dst.get()) == (90, 10)


class TestRunner:
    def test_run_workload_summary(self):
        session = Session.simulated(latency_ms=20)
        alice, bob = session.add_sites(2)
        objs = session.replicate(DInt, "x", [alice, bob], initial=0)
        session.settle()
        parties = [
            WorkloadParty(
                site=alice,
                workload=BlindWriteWorkload(objs[0], party_tag=1),
                arrivals=UniformArrivals(100.0),
                count=5,
            ),
            WorkloadParty(
                site=bob,
                workload=BlindWriteWorkload(objs[1], party_tag=2),
                arrivals=UniformArrivals(150.0),
                count=3,
            ),
        ]
        summary = run_workload(session, parties, seed=1)
        assert summary["committed"] == 8
        assert summary["aborted"] == 0
        assert len(summary["outcomes"]) == 8
        assert summary["mean_commit_latency_ms"] is not None
        assert summary["counters"]["commits"] >= 8
        assert objs[0].get() == objs[1].get()

    def test_run_workload_requires_sim(self):
        session = Session()  # memory transport
        site = session.add_site()
        with pytest.raises(ReproError):
            run_workload(session, [], seed=0)

    def test_deterministic_given_seed(self):
        def run_once():
            session = Session.simulated(latency_ms=20, seed=5)
            alice, bob = session.add_sites(2)
            objs = session.replicate(DInt, "x", [alice, bob], initial=0)
            session.settle()
            parties = [
                WorkloadParty(
                    site=alice,
                    workload=ReadModifyWriteWorkload(objs[0]),
                    arrivals=PoissonArrivals(80.0),
                    count=10,
                ),
                WorkloadParty(
                    site=bob,
                    workload=ReadModifyWriteWorkload(objs[1]),
                    arrivals=PoissonArrivals(80.0),
                    count=10,
                ),
            ]
            summary = run_workload(session, parties, seed=9)
            return objs[0].get(), summary["counters"]["retries"]

        assert run_once() == run_once()
