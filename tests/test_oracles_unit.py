"""Direct unit tests for each explorer oracle (repro.explore.oracles).

The integration suites exercise the oracles only through full trials,
where a violation means the *protocol* broke.  Here each oracle is fed a
hand-built :class:`TrialResult` — fake sites, objects, and view logs — so
every check is proven to fire on the exact evidence it guards against,
and to stay silent on the conforming baseline.  An oracle that silently
stopped detecting its violation class would pass every healthy
integration test; these fixtures are the proof of non-vacuity.
"""

from repro.core.transaction import TransactionOutcome
from repro.explore.oracles import check_trial
from repro.explore.plan import exhaustive_config
from repro.explore.trial import TrialResult, TxnInfo
from repro.vtime import VirtualTime

VT1 = VirtualTime(10, 0)
VT2 = VirtualTime(20, 1)
HORIZON = VirtualTime(2**62, 2**30)


class FakeNetwork:
    def __init__(self, failed=()):
        self.failed = set(failed)

    def is_failed(self, site_id):
        return site_id in self.failed


class FakeEngine:
    def __init__(self, status):
        self.status = dict(status)


class FakeObj:
    def __init__(self, committed_value):
        self.committed_value = committed_value

    def value_at(self, vt, committed_only=False):
        return self.committed_value


class FakeSite:
    def __init__(self, site_id, status, digest, residue=None):
        self.site_id = site_id
        self.engine = FakeEngine(status)
        self._digest = digest
        self._residue = dict(residue or {})

    def state_digest(self):
        return dict(self._digest)

    def protocol_residue(self):
        return dict(self._residue)


class FakeView:
    """Stands in for both recording view classes (oracles only read .log)."""

    def __init__(self, log):
        self.log = list(log)


def make_result(
    *,
    status0=None,
    status1=None,
    values=None,
    digest1=None,
    residue0=None,
    outcome=None,
    views=False,
    pess_log=None,
    opt_log=None,
    failed=(),
):
    """A 2-site TrialResult with one committed rmw transaction at VT1.

    The defaults describe the conforming outcome (ctr incremented once,
    identical digests, no residue); each oracle test overrides exactly the
    evidence its check inspects.
    """
    status0 = {VT1: "committed"} if status0 is None else status0
    status1 = dict(status0) if status1 is None else status1
    values = {"ctr": 1, "board": 0, "xa": 1000, "xb": 0} if values is None else values
    digest0 = {"root": (VT1.key, "1")}
    digest1 = digest0 if digest1 is None else digest1
    outcome = (
        TransactionOutcome(committed=True, vt=VT1) if outcome is None else outcome
    )

    config = exhaustive_config(2, [(0, "rmw")], views=views)
    sites = [
        FakeSite(0, status0, digest0, residue0),
        FakeSite(1, status1, digest1),
    ]
    objects = {
        name: {0: FakeObj(value), 1: FakeObj(value)} for name, value in values.items()
    }
    result = TrialResult(
        config=config,
        session=None,
        network=FakeNetwork(failed),
        sites=sites,
        objects=objects,
        infos=[
            TxnInfo(party=0, site=0, kind="rmw", value=None, amount=1, outcome=outcome)
        ],
    )
    if views:
        # Only ctr views attached: the oracles skip absent (site, obj) views.
        for sid in (0, 1):
            result.pess_views[(sid, "ctr")] = FakeView(
                pess_log if pess_log is not None else [(VirtualTime(1, 0), 0), (VT1, 1)]
            )
            result.opt_views[(sid, "ctr")] = FakeView(
                opt_log if opt_log is not None else [(VT1, 1)]
            )
    return result


def oracles_of(result):
    return sorted({v.oracle for v in check_trial(result)})


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------


def test_conforming_result_is_clean():
    assert check_trial(make_result()) == []


def test_conforming_result_with_views_is_clean():
    assert check_trial(make_result(views=True)) == []


def test_all_sites_failed_promises_nothing():
    assert check_trial(make_result(failed=(0, 1))) == []


# ----------------------------------------------------------------------
# status
# ----------------------------------------------------------------------


def test_status_flags_commit_abort_disagreement():
    result = make_result(status1={VT1: "aborted"})
    violations = [v for v in check_trial(result) if v.oracle == "status"]
    assert violations and "committed at site 0" in violations[0].detail


def test_status_flags_initiator_commit_unlogged():
    # The initiator saw its transaction commit, but no live site's status
    # map records it (e.g. the commit summary was lost).
    result = make_result(
        status0={},
        values={"ctr": 0, "board": 0, "xa": 1000, "xb": 0},
        digest1=None,
    )
    assert "status" in oracles_of(result)


def test_status_ignores_dead_sites():
    # The disagreeing site is failed: fail-stop makes no promises for it.
    result = make_result(status1={VT1: "aborted"}, failed=(1,))
    assert "status" not in oracles_of(result)


# ----------------------------------------------------------------------
# effect
# ----------------------------------------------------------------------


def test_effect_flags_value_diverging_from_serial_replay():
    # One committed increment: serial replay says ctr == 1, replicas hold 2.
    result = make_result(values={"ctr": 2, "board": 0, "xa": 1000, "xb": 0})
    violations = [v for v in check_trial(result) if v.oracle == "effect"]
    assert violations and violations[0].obj == "ctr"


def test_effect_ignores_aborted_transactions():
    # The only transaction aborted: baseline values must be expected.
    result = make_result(
        status0={VT1: "aborted"},
        values={"ctr": 0, "board": 0, "xa": 1000, "xb": 0},
        outcome=TransactionOutcome(committed=False, aborted_no_retry=True, vt=VT1),
    )
    assert check_trial(result) == []


# ----------------------------------------------------------------------
# convergence
# ----------------------------------------------------------------------


def test_convergence_flags_digest_mismatch():
    result = make_result(digest1={"root": (VT2.key, "7")})
    violations = [v for v in check_trial(result) if v.oracle == "convergence"]
    assert violations and violations[0].site == 1


# ----------------------------------------------------------------------
# residue
# ----------------------------------------------------------------------


def test_residue_flags_leaked_protocol_state():
    result = make_result(residue0={"unresolved-transactions": ["vt=10 state=AWAITING"]})
    violations = [v for v in check_trial(result) if v.oracle == "residue"]
    assert violations and "unresolved-transactions" in violations[0].detail


# ----------------------------------------------------------------------
# pessimistic
# ----------------------------------------------------------------------


def test_pessimistic_flags_missing_bootstrap():
    result = make_result(views=True, pess_log=[])
    violations = [v for v in check_trial(result) if v.oracle == "pessimistic"]
    assert violations and "bootstrap" in violations[0].detail


def test_pessimistic_flags_non_monotonic_delivery():
    result = make_result(
        views=True, pess_log=[(VirtualTime(1, 0), 0), (VT1, 1), (VirtualTime(5, 0), 1)]
    )
    assert any(
        "non-monotonic" in v.detail
        for v in check_trial(result)
        if v.oracle == "pessimistic"
    )


def test_pessimistic_flags_lost_committed_write():
    # Bootstrap only: the committed write at VT1 was never delivered.
    result = make_result(views=True, pess_log=[(VirtualTime(1, 0), 0)])
    assert any(
        "lossless" in v.detail
        for v in check_trial(result)
        if v.oracle == "pessimistic"
    )


def test_pessimistic_flags_uncommitted_delivery():
    # VT2 was never committed anywhere, yet a pessimistic view saw it.
    result = make_result(
        views=True, pess_log=[(VirtualTime(1, 0), 0), (VT1, 1), (VT2, 2)]
    )
    assert any(
        "no committed status" in v.detail
        for v in check_trial(result)
        if v.oracle == "pessimistic"
    )


def test_pessimistic_flags_wrong_value():
    result = make_result(views=True, pess_log=[(VirtualTime(1, 0), 0), (VT1, 9)])
    assert any(
        "serial reconstruction" in v.detail
        for v in check_trial(result)
        if v.oracle == "pessimistic"
    )


# ----------------------------------------------------------------------
# optimistic
# ----------------------------------------------------------------------


def test_optimistic_flags_unsuperseded_final_notification():
    result = make_result(views=True, opt_log=[(VT1, 9)])
    violations = [v for v in check_trial(result) if v.oracle == "optimistic"]
    assert violations and violations[0].obj == "ctr"


def test_optimistic_accepts_superseded_history():
    # Intermediate wrong values are the optimistic contract; only the
    # final notification must match the committed outcome.
    result = make_result(views=True, opt_log=[(VirtualTime(5, 0), 9), (VT1, 1)])
    assert check_trial(result) == []
