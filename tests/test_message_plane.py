"""Tests for the batched message plane and the redesigned Transport/Session API.

Covers: per-destination envelope coalescing (metrics, FIFO, convergence
digests identical with and without batching), Envelope accounting in the
simulated network's stats, the explicit ``session.batched()`` window, the
``Transport.pending``/``quiesce`` drain contract, broadcast skipping failed
destinations, and the class-keyed replicate registry with its deprecated
string aliases.
"""

import asyncio

import pytest

from repro import DInt, DList, Session
from repro.core.messages import CommitMsg, Envelope
from repro.core.scalars import DString
from repro.core.session import register_replicable
from repro.errors import ReproError, TransportError
from repro.transport.asyncio_transport import AsyncioTransport
from repro.transport.base import Transport
from repro.transport.memory import MemoryTransport
from repro.vtime import VirtualTime


def run_commit_fanout(batching: bool, n_sites: int = 4, txns: int = 6):
    """The standard commit-fanout workload: K increments from a non-primary
    origin against one fully replicated counter."""
    session = Session.simulated(latency_ms=20.0, seed=7, batching=batching)
    sites = session.add_sites(n_sites)
    objs = session.replicate(DInt, "ctr", sites, initial=0)
    session.settle()
    origin = sites[-1]
    obj = objs[-1]
    for _ in range(txns):
        origin.transact(lambda: obj.set(obj.get() + 1))
    session.settle()
    digests = [s.state_digest() for s in sites]
    wire = {
        "messages": sum(s.outbox.messages_sent for s in sites),
        "envelopes": sum(s.outbox.envelopes_sent for s in sites),
        "batched": sum(s.outbox.messages_batched for s in sites),
    }
    return digests, wire, session


class TestBatching:
    def test_disabled_is_default_and_counts_frames_one_to_one(self):
        digests, wire, session = run_commit_fanout(batching=False)
        assert wire["messages"] == wire["envelopes"]
        assert wire["batched"] == 0
        assert session.network.stats.envelopes_sent == 0

    def test_batching_reduces_envelopes_with_identical_digests(self):
        digests_off, wire_off, _ = run_commit_fanout(batching=False)
        digests_on, wire_on, session = run_commit_fanout(batching=True)
        # Same protocol content crossed the wire...
        assert digests_on == digests_off
        assert all(d == digests_on[0] for d in digests_on)
        # ...in strictly fewer frames (acceptance floor is 3x on the bench
        # workload; here we only require a real reduction).
        assert wire_on["envelopes"] < wire_off["envelopes"]
        assert wire_on["batched"] > 0
        assert session.network.stats.envelopes_sent > 0

    def test_batching_preserves_commit_counters(self):
        _, _, off = run_commit_fanout(batching=False)
        _, _, on = run_commit_fanout(batching=True)
        assert on.counters()["commits"] == off.counters()["commits"]

    def test_network_stats_reconcile_with_envelopes(self):
        _, _, session = run_commit_fanout(batching=True)
        stats = session.network.stats
        assert stats.reconcile()
        assert "Envelope" not in stats.per_type_sent  # inner types counted
        assert stats.per_type_sent.get("TxnPropagateMsg", 0) > 0

    def test_explicit_batched_window_without_session_flag(self):
        session = Session.simulated(latency_ms=10.0, seed=3, batching=False)
        sites = session.add_sites(3)
        objs = session.replicate(DInt, "x", sites, initial=0)
        session.settle()
        baseline = sum(s.outbox.messages_batched for s in sites)
        with session.batched():
            for k in range(4):
                sites[0].transact(lambda k=k: objs[0].set(k))
        session.settle()
        assert sum(s.outbox.messages_batched for s in sites) > baseline
        assert all(o.get() == 3 for o in objs)

    def test_envelope_sent_event_emitted(self):
        session = Session.simulated(latency_ms=10.0, seed=5, batching=True)
        bus = session.observe()
        events = []
        bus.subscribe(lambda e: events.append(e) if e.kind == "envelope_sent" else None)
        sites = session.add_sites(3)
        objs = session.replicate(DInt, "x", sites, initial=0)
        sites[0].transact(lambda: objs[0].set(9))
        session.settle()
        assert events, "batched fan-out should emit envelope_sent"
        assert all(e.data["count"] >= 2 for e in events)

    def test_envelope_dataclass(self):
        env = Envelope((CommitMsg(VirtualTime(1, 0), 1),))
        assert len(env) == 1


class TestOutbox:
    def test_singleton_flush_sends_bare_payload(self):
        transport = MemoryTransport(auto_drain=False)
        session = Session(transport=transport, batching=True)
        a = session.add_site("a")
        b = session.add_site("b")
        with a.outbox.turn():
            a.send(b.site_id, CommitMsg(VirtualTime(1, 0), 1))
        src, dst, payload = transport._queue[-1]
        assert not isinstance(payload, Envelope)
        assert a.outbox.envelopes_sent == 1
        assert a.outbox.messages_batched == 0

    def test_multi_message_flush_wraps_in_envelope_in_fifo_order(self):
        transport = MemoryTransport(auto_drain=False)
        session = Session(transport=transport, batching=True)
        a = session.add_site("a")
        b = session.add_site("b")
        msgs = [CommitMsg(VirtualTime(i, 0), i) for i in range(3)]
        with a.outbox.turn():
            for m in msgs:
                a.send(b.site_id, m)
        src, dst, payload = transport._queue[-1]
        assert isinstance(payload, Envelope)
        assert list(payload.messages) == msgs
        assert a.outbox.envelopes_sent == 1
        assert a.outbox.messages_sent == 3

    def test_nested_turns_flush_once_at_outermost(self):
        transport = MemoryTransport(auto_drain=False)
        session = Session(transport=transport, batching=True)
        a = session.add_site("a")
        b = session.add_site("b")
        with a.outbox.turn():
            with a.outbox.turn():
                a.send(b.site_id, CommitMsg(VirtualTime(1, 0), 1))
            assert transport.pending() == 0  # still buffered
            a.send(b.site_id, CommitMsg(VirtualTime(2, 0), 2))
        assert transport.pending() == 1  # one envelope frame

    def test_end_turn_without_begin_raises(self):
        session = Session(transport=MemoryTransport())
        a = session.add_site("a")
        with pytest.raises(RuntimeError):
            a.outbox.end_turn()


class TestTransportContract:
    def test_memory_pending_and_quiesce(self):
        transport = MemoryTransport(auto_drain=False)
        inbox = []
        transport.register(0, lambda src, p: None)
        transport.register(1, lambda src, p: inbox.append(p))
        transport.send(0, 1, "x")
        transport.send(0, 1, "y")
        assert transport.pending() == 2
        assert transport.quiesce() == 2
        assert transport.pending() == 0
        assert inbox == ["x", "y"]

    def test_sim_pending_and_quiesce(self):
        session = Session.simulated(latency_ms=10.0, seed=1)
        sites = session.add_sites(2)
        objs = session.replicate(DInt, "x", sites, initial=0)
        session.settle()
        sites[0].transact(lambda: objs[0].set(1))
        assert session.transport.pending() > 0
        delivered = session.transport.quiesce()
        assert delivered > 0
        assert session.transport.pending() == 0

    def test_asyncio_sync_quiesce_raises(self):
        transport = AsyncioTransport()
        with pytest.raises(TransportError, match="aquiesce"):
            transport.quiesce()

    def test_asyncio_pending_counts_queued(self):
        async def main():
            transport = AsyncioTransport()
            transport.register(0, lambda src, p: None)
            transport.send(1, 0, "x")
            assert transport.pending() == 1

        asyncio.run(main())

    def test_session_settle_uses_transport_quiesce(self):
        class Recording(MemoryTransport):
            def __init__(self):
                super().__init__()
                self.quiesce_calls = 0

            def quiesce(self, max_events=None):
                self.quiesce_calls += 1
                return super().quiesce(max_events)

        transport = Recording()
        session = Session(transport=transport)
        session.add_site("a")
        session.settle()
        assert transport.quiesce_calls == 1

    def test_broadcast_skips_failed_destinations(self):
        sent = []

        class Probe(Transport):
            def register(self, site, handler):
                pass

            def send(self, src, dst, payload):
                sent.append(dst)

            def now(self):
                return 0.0

            def pending(self):
                return 0

            def quiesce(self, max_events=None):
                return 0

            def is_failed(self, site):
                return site == 2

        Probe().broadcast(0, [1, 2, 3], "msg")
        assert sent == [1, 3]

    def test_memory_broadcast_skips_failed(self):
        transport = MemoryTransport(auto_drain=False)
        for site in (0, 1, 2):
            transport.register(site, lambda src, p: None)
        transport.fail_site(2)
        before = transport.messages_sent
        transport.broadcast(0, [1, 2], "msg")
        assert transport.messages_sent == before + 1  # only site 1


class TestReplicateRegistry:
    def test_class_keyed_replicate(self):
        session = Session.simulated(latency_ms=10.0, seed=2)
        sites = session.add_sites(2)
        objs = session.replicate(DList, "doc", sites)
        session.settle()
        assert all(type(o) is DList for o in objs)

    def test_string_alias_is_deprecated_but_identical(self):
        def build(kind):
            session = Session.simulated(latency_ms=10.0, seed=4)
            sites = session.add_sites(2)
            objs = session.replicate(kind, "x", sites, initial=7)
            session.settle()
            return [s.state_digest() for s in session.sites], [type(o) for o in objs]

        new_digests, new_types = build(DInt)
        with pytest.warns(DeprecationWarning, match="deprecated"):
            old_digests, old_types = build("int")
        assert old_digests == new_digests
        assert old_types == new_types

    def test_unknown_kinds_raise(self):
        session = Session.simulated()
        site = session.add_site("a")
        with pytest.raises(ReproError, match="cannot replicate"):
            session.replicate("blob", "x", [site])
        with pytest.raises(ReproError, match="register_replicable"):
            session.replicate(dict, "x", [site])

    def test_register_replicable_extension(self):
        class DTag(DString):
            pass

        register_replicable(
            DTag, lambda s, name, initial: DTag(s, name, initial or "")
        )
        session = Session.simulated(latency_ms=10.0, seed=6)
        sites = session.add_sites(2)
        objs = session.replicate(DTag, "tag", sites, initial="hello")
        session.settle()
        assert all(type(o) is DTag for o in objs)
        assert objs[1].get() == "hello"


class TestSessionRoster:
    def test_explicit_site_ids_and_base_roster(self):
        session = Session(transport=MemoryTransport(), roster=[0, 1, 2, 3])
        a = session.add_site("a", site_id=2)
        b = session.add_site("b", site_id=3)
        assert a.site_id == 2 and b.site_id == 3
        assert a.roster == {0, 1, 2, 3}
        assert b.roster == {0, 1, 2, 3}

    def test_duplicate_site_id_rejected(self):
        session = Session(transport=MemoryTransport())
        session.add_site("a", site_id=5)
        with pytest.raises(ReproError, match="already exists"):
            session.add_site("b", site_id=5)
