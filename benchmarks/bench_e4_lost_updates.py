"""E4 — Lost-update rate for blind-write workloads (section 5.2.2).

Paper: "Under loaded conditions, transactions involving only blind-writes
were measured to determine the impact on optimistic views due to lost
updates.  Even at rates of one update per second from both parties of a
two-party collaboration, the lost update rate was below 20.1 percent."

Reproduction: two parties blind-write a shared object with Poisson
arrivals; an optimistic view at each site counts updates whose VT arrived
behind a newer value (no notification — a lost update).  We sweep the
per-party rate; the shape to reproduce is a lost-update rate that grows
with the update rate and sits in the low-tens-of-percent region at
1 update/s with WAN-ish delays.
"""

import pytest

from repro.bench import attach_probe, two_party_scenario
from repro.bench.report import Table, emit, format_table
from repro.workloads import BlindWriteWorkload, PoissonArrivals, WorkloadParty, run_workload

LATENCY_MS = 100.0
UPDATES_PER_PARTY = 100


def run_point(rate_per_s, seed=1):
    interval_ms = 1000.0 / rate_per_s
    scenario = two_party_scenario(latency_ms=LATENCY_MS, seed=seed)
    probe_a = attach_probe(scenario.alice, [scenario.a], "optimistic")
    probe_b = attach_probe(scenario.bob, [scenario.b], "optimistic")
    parties = [
        WorkloadParty(
            site=scenario.alice,
            workload=BlindWriteWorkload(scenario.a, party_tag=1),
            arrivals=PoissonArrivals(interval_ms),
            count=UPDATES_PER_PARTY,
        ),
        WorkloadParty(
            site=scenario.bob,
            workload=BlindWriteWorkload(scenario.b, party_tag=2),
            arrivals=PoissonArrivals(interval_ms),
            count=UPDATES_PER_PARTY,
        ),
    ]
    summary = run_workload(scenario.session, parties, seed=seed)
    lost = probe_a.proxy.lost_updates + probe_b.proxy.lost_updates
    # Each view can observe every update (2 parties x N updates); a lost
    # update is one that never yielded a notification.
    observable = 2 * UPDATES_PER_PARTY * 2
    rate = 100.0 * lost / observable
    rollbacks = summary["counters"]["aborts_conflict"]
    return rate, rollbacks, summary


def run_experiment():
    table = Table(
        title=f"E4: blind-write lost updates (t = {LATENCY_MS:.0f} ms, "
        f"{UPDATES_PER_PARTY} updates/party, Poisson)",
        headers=["rate/party (1/s)", "lost updates (%)", "rollbacks"],
    )
    rates = [0.2, 0.5, 1.0, 2.0, 5.0]
    measured = {}
    for rate in rates:
        lost_pct, rollbacks, _ = run_point(rate)
        measured[rate] = (lost_pct, rollbacks)
        table.add(rate, lost_pct, rollbacks)
    table.note("paper: at 1 update/s per party, lost-update rate below 20.1%")
    table.note("paper: blind writes => concurrency tests never fail (0 rollbacks)")
    return table, measured


def test_e4_lost_updates(benchmark):
    table, measured = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("E4_lost_updates", format_table(table))

    # Shape 1: blind writes never abort (section 5.1.2).
    assert all(rollbacks == 0 for _, rollbacks in measured.values())
    # Shape 2: the paper's headline point — ~1/s per party stays under
    # roughly 20% lost updates.
    assert measured[1.0][0] < 20.1
    # Shape 3: lost updates grow with the update rate.
    assert measured[0.2][0] <= measured[1.0][0] <= measured[5.0][0]
    # Shape 4: at high rates losses are substantial (the effect is real).
    assert measured[5.0][0] > measured[0.2][0]
