"""E3 — Latency under a range of artificially induced network delays.

Paper (section 5.2.2, first benchmark): "Latency of optimistic and
pessimistic views was measured under a range of artificially induced
network delays, and the observed latencies closely matched the analytical
expectations."

We sweep the one-way delay t and verify the measured view-notification
latencies track the analytic lines (0 and t for optimistic at origin and
remote; 2t and 3t for pessimistic) across the whole range.
"""

import pytest

from repro.bench import attach_probe, two_party_scenario
from repro.bench.report import Table, emit, format_table

DELAYS_MS = [5.0, 10.0, 25.0, 50.0, 100.0, 200.0]


def run_point(t):
    scenario = two_party_scenario(latency_ms=t, delegation_enabled=False)
    opt_o = attach_probe(scenario.bob, [scenario.b], "optimistic")
    opt_r = attach_probe(scenario.alice, [scenario.a], "optimistic")
    pess_o = attach_probe(scenario.bob, [scenario.b], "pessimistic")
    pess_r = attach_probe(scenario.alice, [scenario.a], "pessimistic")
    t0 = scenario.session.scheduler.now
    scenario.bob.transact(lambda: scenario.b.set(7))
    scenario.session.settle()
    return {
        "opt_origin": opt_o.first_seen("shared", 7) - t0,
        "opt_remote": opt_r.first_seen("shared", 7) - t0,
        "pess_origin": pess_o.first_seen("shared", 7) - t0,
        "pess_remote": pess_r.first_seen("shared", 7) - t0,
    }


def run_experiment():
    table = Table(
        title="E3: view latency across network delays (measured vs analytic)",
        headers=[
            "t_ms",
            "opt@origin (0)",
            "opt@remote (t)",
            "pess@origin (2t)",
            "pess@remote (<=3t)",
        ],
    )
    points = []
    for t in DELAYS_MS:
        result = run_point(t)
        points.append((t, result))
        table.add(
            t,
            result["opt_origin"],
            result["opt_remote"],
            result["pess_origin"],
            result["pess_remote"],
        )
    table.note("analytic expectations in parentheses; exact match expected")
    return table, points


def test_e3_delay_sweep(benchmark):
    table, points = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("E3_delay_sweep", format_table(table))

    for t, result in points:
        assert result["opt_origin"] == 0.0
        assert result["opt_remote"] == pytest.approx(t)
        assert result["pess_origin"] == pytest.approx(2 * t)
        assert result["pess_remote"] <= 3 * t + 0.5
        # The paper's "closely matched analytical expectations": pessimistic
        # remote latency is linear in t (slope 3 here).
        assert result["pess_remote"] == pytest.approx(3 * t)
