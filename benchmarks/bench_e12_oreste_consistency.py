"""E12 — DECAF vs ORESTE: quiescent vs snapshot correctness (section 6).

The paper's qualitative argument made quantitative: under concurrent
commuting operations (color changes vs moves), ORESTE sites pass through
*different observable histories* — "some sites might see a transition in
which a blue object was at A and others a transition in which a red object
was at B" — and two-object 'transfers' expose half-applied states, while
DECAF's atomic transactions and consistent snapshots never do.

We run matched workloads and count inconsistent observations per site.
"""

import pytest

from repro import Session, View
from repro.baselines.oreste import OresteSystem
from repro.bench.report import Table, emit, format_table
from repro import DString

T = 60.0
ROUNDS = 12


def run_oreste(seed=0):
    system = OresteSystem(n_sites=2, latency_ms=T, seed=seed)
    system.issue(0, "shape", "set_color", "red")
    system.issue(0, "shape", "move", "A")
    system.settle()
    for i in range(ROUNDS):
        system.issue(0, "shape", "set_color", f"c{i}")
        system.issue(1, "shape", "move", f"p{i}")
        system.run_for(T / 2)  # overlap the next round with deliveries
    system.settle()
    transitions = system.transition_sets("shape")
    # States one site observed that the other never did: divergent
    # observable histories (inconsistent intermediate observations).
    divergent = len(transitions[0] ^ transitions[1])
    converged = system.state_at(0) == system.state_at(1)
    return divergent, converged, sum(system.undo_redo_events)


def run_decaf(seed=0):
    session = Session.simulated(latency_ms=T, seed=seed)
    alice, bob = session.add_sites(2)
    colors = session.replicate(DString, "color", [alice, bob], initial="red")
    places = session.replicate(DString, "place", [alice, bob], initial="A")
    session.settle()

    observed = [set(), set()]

    class PairView(View):
        def __init__(self, idx, c, p):
            self.idx, self.c, self.p = idx, c, p

        def update(self, changed, snapshot):
            observed[self.idx].add((snapshot.read(self.c), snapshot.read(self.p)))

    alice.views.attach(PairView(0, colors[0], places[0]), [colors[0], places[0]], "pessimistic")
    bob.views.attach(PairView(1, colors[1], places[1]), [colors[1], places[1]], "pessimistic")

    for i in range(ROUNDS):
        alice.transact(lambda v=f"c{i}": colors[0].set(v))
        bob.transact(lambda v=f"p{i}": places[1].set(v))
        session.run_for(T / 2)
    session.settle()
    # Pessimistic views: every observed state is a committed serialization
    # prefix, so both sites' observation sets are comparable; divergence =
    # states seen by exactly one site.
    divergent = len(observed[0] ^ observed[1])
    converged = (colors[0].get(), places[0].get()) == (colors[1].get(), places[1].get())
    return divergent, converged


def run_experiment():
    table = Table(
        title=f"E12: observable-history divergence (t = {T:.0f} ms, {ROUNDS} concurrent rounds)",
        headers=["system", "divergent observations", "final states converge", "undo/redo"],
    )
    o_div, o_conv, o_undo = run_oreste()
    d_div, d_conv = run_decaf()
    table.add("ORESTE (quiescent correctness)", o_div, o_conv, o_undo)
    table.add("DECAF (pessimistic views)", d_div, d_conv, "-")
    table.note("paper §6: ORESTE 'only considers quiescent state'; DECAF snapshots are consistent throughout")
    return table, (o_div, o_conv), (d_div, d_conv)


def test_e12_oreste_consistency(benchmark):
    table, oreste, decaf = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("E12_oreste_consistency", format_table(table))

    # Both systems converge at quiescence...
    assert oreste[1] and decaf[1]
    # ...but ORESTE sites lived through divergent observable histories,
    # while DECAF pessimistic views observed identical committed sequences.
    assert oreste[0] > 0
    assert decaf[0] == 0
