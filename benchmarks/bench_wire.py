"""Message-plane benchmark: envelope coalescing and wire-codec throughput.

Runs the standard commit-fanout workload (K sequential increments of one
fully replicated counter, issued from a non-primary origin) in three
message-plane configurations:

* ``off``   — seed behaviour: every protocol message is its own frame,
* ``turn``  — session-level ``batching=True``: each protocol turn's
  fan-out coalesces per destination (join/commit turns that address the
  same peer more than once shrink; steady-state one-message turns don't),
* ``burst`` — the whole K-transaction burst inside one explicit
  ``session.batched()`` window, the bulk-loading pattern: everything a
  site says to one peer across the burst leaves as one envelope.

The check gate (``--check``) enforces the message-plane contract:

1. *Transparency*: all three modes move exactly the same protocol
   messages and every site ends with an identical state digest —
   batching changes framing, never protocol content.
2. *Reduction*: the burst mode cuts ``envelopes_sent`` by at least
   ``--min-ratio`` (default 3x) on the standard workload.

A codec microbenchmark (encode/decode of a representative
``TxnPropagateMsg`` frame) rides along ungated; its us/op and bytes/frame
land in the perf trajectory so serialization regressions show up as a
slope change.

Usage::

    PYTHONPATH=src python benchmarks/bench_wire.py            # full run
    PYTHONPATH=src python benchmarks/bench_wire.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_wire.py --quick --check
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time
from typing import Any, Dict, List

if __name__ == "__main__":  # allow running straight from a checkout
    _root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    _src = os.path.join(_root, "src")
    if _src not in sys.path:
        sys.path.insert(0, _src)

from repro import DInt, Session

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_wire.json")

FULL = {"transactions": 200, "sites": 4, "repeats": 5}
QUICK = {"transactions": 60, "sites": 4, "repeats": 3}

MODES = ("off", "turn", "burst")


def commit_fanout(transactions: int, n_sites: int, mode: str) -> Dict[str, Any]:
    """One run of the standard commit-fanout workload in one plane mode."""
    session = Session.simulated(latency_ms=20.0, seed=7, batching=(mode != "off"))
    sites = session.add_sites(n_sites)
    objs = session.replicate(DInt, "ctr", sites, initial=0)
    session.settle()
    setup_messages = sum(s.outbox.messages_sent for s in sites)
    setup_envelopes = sum(s.outbox.envelopes_sent for s in sites)
    origin, obj = sites[-1], objs[-1]

    def burst() -> None:
        for _ in range(transactions):
            origin.transact(lambda: obj.set(obj.get() + 1))

    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        if mode == "burst":
            with session.batched():
                burst()
        else:
            burst()
        session.settle()
        wall_s = time.perf_counter() - start
    finally:
        gc.enable()

    return {
        "wall_s": wall_s,
        "messages": sum(s.outbox.messages_sent for s in sites) - setup_messages,
        "envelopes": sum(s.outbox.envelopes_sent for s in sites) - setup_envelopes,
        "batched": sum(s.outbox.messages_batched for s in sites),
        "setup_messages": setup_messages,
        "setup_envelopes": setup_envelopes,
        "digests": [s.state_digest() for s in sites],
        "value": objs[0].get(),
    }


def bench_codec(repeats: int, iterations: int = 2000) -> Dict[str, Any]:
    """Encode/decode throughput for a representative propagate frame."""
    from repro.core.messages import OpPayload, TxnPropagateMsg, WriteOp
    from repro.vtime import VirtualTime
    from repro.wire import decode, encode

    msg = TxnPropagateMsg(
        txn_vt=VirtualTime(41, 2),
        origin=2,
        writes=tuple(
            WriteOp(
                object_uid=f"s{i}:ctr",
                op=OpPayload(kind="set", args=(i,)),
                read_vt=VirtualTime(40, 2),
                graph_vt=VirtualTime(12, 0),
            )
            for i in range(3)
        ),
        read_checks=(),
        clock=57,
    )
    blob = encode(msg)
    assert decode(blob) == msg

    def best_of(fn) -> float:
        gc.collect()
        gc.disable()
        try:
            times = []
            for _ in range(repeats):
                start = time.perf_counter()
                for _ in range(iterations):
                    fn()
                times.append(time.perf_counter() - start)
        finally:
            gc.enable()
        return min(times) / iterations

    encode_s = best_of(lambda: encode(msg))
    decode_s = best_of(lambda: decode(blob))
    return {
        "frame_bytes": len(blob),
        "encode_us": round(encode_s * 1e6, 3),
        "decode_us": round(decode_s * 1e6, 3),
    }


def run(quick: bool = False, repeats: int = 0) -> Dict[str, Any]:
    cfg = QUICK if quick else FULL
    transactions, n_sites = cfg["transactions"], cfg["sites"]
    repeats = repeats or cfg["repeats"]

    # Untimed warmup pays import/allocator cost outside the timed series.
    commit_fanout(transactions, n_sites, "off")
    runs: Dict[str, List[Dict[str, Any]]] = {m: [] for m in MODES}
    for _ in range(repeats):  # interleave modes so drift hits all equally
        for mode in MODES:
            runs[mode].append(commit_fanout(transactions, n_sites, mode))

    reference = runs["off"][0]

    def summarize(mode: str) -> Dict[str, Any]:
        rows = runs[mode]
        best = min(r["wall_s"] for r in rows)
        row = rows[0]  # counters are deterministic across repeats
        return {
            "wall_s": [round(r["wall_s"], 6) for r in rows],
            "best_s": round(best, 6),
            "commits_per_sec": round(transactions / best, 1),
            "messages": row["messages"],
            "envelopes": row["envelopes"],
            "batched": row["batched"],
            "envelope_ratio_vs_off": round(
                reference["envelopes"] / row["envelopes"], 2
            ),
        }

    summary = {mode: summarize(mode) for mode in MODES}
    digests_identical = all(
        r["digests"] == reference["digests"] and all(
            d == r["digests"][0] for d in r["digests"]
        )
        for rows in runs.values()
        for r in rows
    )
    messages_identical = all(
        r["messages"] == reference["messages"] for rows in runs.values() for r in rows
    )
    return {
        "schema": "bench_wire/v1",
        "mode": "quick" if quick else "full",
        "python": sys.version.split()[0],
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "transactions": transactions,
        "sites": n_sites,
        "repeats": repeats,
        "fanout": summary,
        "setup": {
            # The join/replicate phase has multi-message turns, so
            # session-level batching shrinks it even in "turn" mode.
            "off_envelopes": runs["off"][0]["setup_envelopes"],
            "turn_envelopes": runs["turn"][0]["setup_envelopes"],
            "turn_ratio": round(
                runs["off"][0]["setup_envelopes"] / runs["turn"][0]["setup_envelopes"], 2
            ),
        },
        "codec": bench_codec(min(repeats, 3)),
        "contract": {
            "digests_identical": digests_identical,
            "messages_identical": messages_identical,
        },
    }


def check(results: Dict[str, Any], min_ratio: float) -> List[str]:
    """Gate the message-plane contract; returns failure descriptions."""
    failures: List[str] = []
    if not results["contract"]["digests_identical"]:
        failures.append(
            "state digests diverge across plane modes/sites — batching changed "
            "protocol outcomes, not just framing"
        )
    if not results["contract"]["messages_identical"]:
        failures.append(
            "protocol message counts differ across plane modes — the batcher "
            "dropped or duplicated messages"
        )
    ratio = results["fanout"]["burst"]["envelope_ratio_vs_off"]
    if ratio < min_ratio:
        failures.append(
            f"burst-mode envelope reduction {ratio:.2f}x is below the "
            f"required {min_ratio:.1f}x on the standard commit-fanout workload"
        )
    if results["fanout"]["burst"]["batched"] == 0:
        failures.append("burst mode coalesced zero messages — the outbox is inert")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="reduced sizes (CI smoke)")
    parser.add_argument("--out", default=DEFAULT_OUT, help="output JSON path")
    parser.add_argument("--repeats", type=int, default=0, help="override repeat count")
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate the batching contract (exit 1 on failure)",
    )
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=3.0,
        help="required burst-mode envelope reduction (default 3x)",
    )
    args = parser.parse_args(argv)

    results = run(quick=args.quick, repeats=args.repeats)
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")

    for mode in MODES:
        row = results["fanout"][mode]
        print(
            f"{mode:6s} best {row['best_s']:.3f}s  {row['commits_per_sec']:>7.1f} commits/s"
            f"  {row['messages']} msgs in {row['envelopes']} envelopes"
            f"  ({row['envelope_ratio_vs_off']:.2f}x vs off)"
        )
    codec = results["codec"]
    print(
        f"\ncodec: {codec['frame_bytes']}B propagate frame, "
        f"encode {codec['encode_us']} us, decode {codec['decode_us']} us"
    )
    print(
        f"setup phase: {results['setup']['off_envelopes']} -> "
        f"{results['setup']['turn_envelopes']} envelopes "
        f"({results['setup']['turn_ratio']:.2f}x) with turn batching"
    )
    print(f"wrote {args.out}")

    if args.check:
        failures = check(results, args.min_ratio)
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print(f"check passed (min ratio {args.min_ratio:.1f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
