"""Message-plane benchmark: envelope coalescing and wire-codec throughput.

Runs the standard commit-fanout workload (K sequential increments of one
fully replicated counter, issued from a non-primary origin) in three
message-plane configurations:

* ``off``   — seed behaviour: every protocol message is its own frame,
* ``turn``  — session-level ``batching=True``: each protocol turn's
  fan-out coalesces per destination (join/commit turns that address the
  same peer more than once shrink; steady-state one-message turns don't),
* ``burst`` — the whole K-transaction burst inside one explicit
  ``session.batched()`` window, the bulk-loading pattern: everything a
  site says to one peer across the burst leaves as one envelope.

The check gate (``--check``) enforces the message-plane contract:

1. *Transparency*: all three modes move exactly the same protocol
   messages and every site ends with an identical state digest —
   batching changes framing, never protocol content.
2. *Reduction*: the burst mode cuts ``envelopes_sent`` by at least
   ``--min-ratio`` (default 3x) on the standard workload.

A codec microbenchmark (encode/decode of a representative
``TxnPropagateMsg`` frame) rides along; its us/op and bytes/frame land in
the perf trajectory so serialization regressions show up as a slope
change.  Under ``--check`` the codec numbers are additionally gated
against the committed ``BENCH_wire.json``: a >2x slowdown of encode or
decode fails CI.

A sockets benchmark measures the real TCP path: ping-pong frame latency
(p50/p99 one-way) between two in-process :class:`TcpTransport` instances,
a one-way burst exercising frame coalescing, and real-socket commits/sec
from the two-OS-process example (``examples/two_process_tcp.py``).

Usage::

    PYTHONPATH=src python benchmarks/bench_wire.py            # full run
    PYTHONPATH=src python benchmarks/bench_wire.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_wire.py --quick --check
    PYTHONPATH=src python benchmarks/bench_wire.py --no-sockets
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time
from typing import Any, Dict, List

if __name__ == "__main__":  # allow running straight from a checkout
    _root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    _src = os.path.join(_root, "src")
    if _src not in sys.path:
        sys.path.insert(0, _src)

from repro import DInt, Session

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_wire.json")

FULL = {"transactions": 200, "sites": 4, "repeats": 5}
QUICK = {"transactions": 60, "sites": 4, "repeats": 3}

MODES = ("off", "turn", "burst")


def commit_fanout(transactions: int, n_sites: int, mode: str) -> Dict[str, Any]:
    """One run of the standard commit-fanout workload in one plane mode."""
    session = Session.simulated(latency_ms=20.0, seed=7, batching=(mode != "off"))
    sites = session.add_sites(n_sites)
    objs = session.replicate(DInt, "ctr", sites, initial=0)
    session.settle()
    setup_messages = sum(s.outbox.messages_sent for s in sites)
    setup_envelopes = sum(s.outbox.envelopes_sent for s in sites)
    origin, obj = sites[-1], objs[-1]

    def burst() -> None:
        for _ in range(transactions):
            origin.transact(lambda: obj.set(obj.get() + 1))

    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        if mode == "burst":
            with session.batched():
                burst()
        else:
            burst()
        session.settle()
        wall_s = time.perf_counter() - start
    finally:
        gc.enable()

    return {
        "wall_s": wall_s,
        "messages": sum(s.outbox.messages_sent for s in sites) - setup_messages,
        "envelopes": sum(s.outbox.envelopes_sent for s in sites) - setup_envelopes,
        "batched": sum(s.outbox.messages_batched for s in sites),
        "setup_messages": setup_messages,
        "setup_envelopes": setup_envelopes,
        "digests": [s.state_digest() for s in sites],
        "value": objs[0].get(),
    }


def bench_codec(repeats: int, iterations: int = 2000) -> Dict[str, Any]:
    """Encode/decode throughput for a representative propagate frame."""
    from repro.core.messages import OpPayload, TxnPropagateMsg, WriteOp
    from repro.vtime import VirtualTime
    from repro.wire import decode, encode

    msg = TxnPropagateMsg(
        txn_vt=VirtualTime(41, 2),
        origin=2,
        writes=tuple(
            WriteOp(
                object_uid=f"s{i}:ctr",
                op=OpPayload(kind="set", args=(i,)),
                read_vt=VirtualTime(40, 2),
                graph_vt=VirtualTime(12, 0),
            )
            for i in range(3)
        ),
        read_checks=(),
        clock=57,
    )
    blob = encode(msg)
    assert decode(blob) == msg

    def best_of(fn) -> float:
        gc.collect()
        gc.disable()
        try:
            times = []
            for _ in range(repeats):
                start = time.perf_counter()
                for _ in range(iterations):
                    fn()
                times.append(time.perf_counter() - start)
        finally:
            gc.enable()
        return min(times) / iterations

    encode_s = best_of(lambda: encode(msg))
    decode_s = best_of(lambda: decode(blob))
    return {
        "frame_bytes": len(blob),
        "encode_us": round(encode_s * 1e6, 3),
        "decode_us": round(decode_s * 1e6, 3),
    }


def bench_sockets(quick: bool, prom_out: str = "") -> Dict[str, Any]:
    """Real-socket numbers: ping-pong latency, coalesced burst, two-process rate.

    Everything here crosses actual TCP sockets on localhost — the ping-pong
    and burst between two in-process :class:`TcpTransport` instances, the
    commit rate between two OS processes running the full join/append
    protocol (``examples/two_process_tcp.py --bench-out``).

    The transports' own telemetry registries ride along: counters land in
    the result under ``telemetry`` and, with ``prom_out``, both registries
    are written as one Prometheus text snapshot.
    """
    import asyncio
    import socket
    import subprocess
    import tempfile

    from repro.core.messages import CommitMsg
    from repro.transport.tcp import TcpTransport
    from repro.vtime import VirtualTime

    pingpong_frames = 200 if quick else 1000
    burst_frames = 500 if quick else 2000
    example_appends = 10 if quick else 40

    def free_port() -> int:
        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            return sock.getsockname()[1]

    async def transports_bench() -> Dict[str, Any]:
        addrs = {0: ("127.0.0.1", free_port()), 1: ("127.0.0.1", free_port())}
        a = TcpTransport(addrs, local_sites={0})
        b = TcpTransport(addrs, local_sites={1})
        got = asyncio.Event()
        echo = [True]
        received = [0]

        def on_b(src, payload):
            if echo[0]:
                b.send(1, 0, payload)
            else:
                received[0] += 1

        a.register(0, lambda src, payload: got.set())
        b.register(1, on_b)
        await a.start()
        await b.start()

        async def rtt_once(i: int) -> float:
            got.clear()
            msg = CommitMsg(VirtualTime(i, 0), i)
            start = time.perf_counter()
            a.send(0, 1, msg)
            await asyncio.wait_for(got.wait(), timeout=10.0)
            return time.perf_counter() - start

        for i in range(20):  # warmup: dial, codec caches, event-loop jit
            await rtt_once(i)
        rtts = sorted([await rtt_once(i) for i in range(pingpong_frames)])

        def pct(p: float) -> float:
            return rtts[min(len(rtts) - 1, int(p / 100.0 * len(rtts)))]

        # One-way burst: the sender task drains the queue in coalesced
        # batches, so writes << frames when the pipeline is doing its job.
        echo[0] = False
        writes0, coalesced0 = a.writes, a.frames_coalesced
        start = time.perf_counter()
        for i in range(burst_frames):
            a.send(0, 1, CommitMsg(VirtualTime(i, 1), i))
        deadline = start + 60.0
        while received[0] < burst_frames:
            if time.perf_counter() > deadline:
                raise TimeoutError("burst frames did not all arrive")
            await asyncio.sleep(0.001)
        burst_s = time.perf_counter() - start
        burst = {
            "frames": burst_frames,
            "frames_per_sec": round(burst_frames / burst_s, 1),
            "writes": a.writes - writes0,
            "frames_coalesced": a.frames_coalesced - coalesced0,
        }
        # The transport registry is process-wide (site=-1); tag each with
        # its local site so the two transports' series stay distinct when
        # rendered into one Prometheus snapshot.
        snapshots = [
            dict(a.metrics.snapshot(), site=0),
            dict(b.metrics.snapshot(), site=1),
        ]
        flush = a.metrics.histograms["transport.write_flush_ms"]
        await a.stop()
        await b.stop()
        return {
            "frames": pingpong_frames,
            "rtt_p50_us": round(pct(50) * 1e6, 1),
            "rtt_p99_us": round(pct(99) * 1e6, 1),
            "frame_p50_us": round(pct(50) / 2 * 1e6, 1),
            "frame_p99_us": round(pct(99) / 2 * 1e6, 1),
            "burst": burst,
            "telemetry": {
                "sender_counters": snapshots[0]["counters"],
                "write_flush_mean_us": round(flush.mean * 1000.0, 1),
            },
            "_snapshots": snapshots,
        }

    pingpong = asyncio.run(transports_bench())
    snapshots = pingpong.pop("_snapshots")
    if prom_out:
        from repro.obs.prom import write_prometheus

        write_prometheus(prom_out, snapshots)

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        bench_file = os.path.join(tmp, "two_process.json")
        proc = subprocess.run(
            [
                sys.executable,
                os.path.join(REPO_ROOT, "examples", "two_process_tcp.py"),
                "--appends", str(example_appends),
                "--bench-out", bench_file,
            ],
            capture_output=True,
            text=True,
            timeout=300,
        )
        if proc.returncode == 0 and os.path.exists(bench_file):
            with open(bench_file) as fh:
                two_process = json.load(fh)
        else:
            two_process = {"error": (proc.stdout + proc.stderr).strip()[-500:]}

    return {"pingpong": pingpong, "two_process": two_process}


def run(
    quick: bool = False, repeats: int = 0, sockets: bool = True, prom_out: str = ""
) -> Dict[str, Any]:
    cfg = QUICK if quick else FULL
    transactions, n_sites = cfg["transactions"], cfg["sites"]
    repeats = repeats or cfg["repeats"]

    # Untimed warmup pays import/allocator cost outside the timed series.
    commit_fanout(transactions, n_sites, "off")
    runs: Dict[str, List[Dict[str, Any]]] = {m: [] for m in MODES}
    for _ in range(repeats):  # interleave modes so drift hits all equally
        for mode in MODES:
            runs[mode].append(commit_fanout(transactions, n_sites, mode))

    reference = runs["off"][0]

    def summarize(mode: str) -> Dict[str, Any]:
        rows = runs[mode]
        best = min(r["wall_s"] for r in rows)
        row = rows[0]  # counters are deterministic across repeats
        return {
            "wall_s": [round(r["wall_s"], 6) for r in rows],
            "best_s": round(best, 6),
            "commits_per_sec": round(transactions / best, 1),
            "messages": row["messages"],
            "envelopes": row["envelopes"],
            "batched": row["batched"],
            "envelope_ratio_vs_off": round(
                reference["envelopes"] / row["envelopes"], 2
            ),
        }

    summary = {mode: summarize(mode) for mode in MODES}
    digests_identical = all(
        r["digests"] == reference["digests"] and all(
            d == r["digests"][0] for d in r["digests"]
        )
        for rows in runs.values()
        for r in rows
    )
    messages_identical = all(
        r["messages"] == reference["messages"] for rows in runs.values() for r in rows
    )
    result: Dict[str, Any] = {
        "schema": "bench_wire/v1",
        "mode": "quick" if quick else "full",
        "python": sys.version.split()[0],
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "transactions": transactions,
        "sites": n_sites,
        "repeats": repeats,
        "fanout": summary,
        "setup": {
            # The join/replicate phase has multi-message turns, so
            # session-level batching shrinks it even in "turn" mode.
            "off_envelopes": runs["off"][0]["setup_envelopes"],
            "turn_envelopes": runs["turn"][0]["setup_envelopes"],
            "turn_ratio": round(
                runs["off"][0]["setup_envelopes"] / runs["turn"][0]["setup_envelopes"], 2
            ),
        },
        "codec": bench_codec(min(repeats, 3)),
        "contract": {
            "digests_identical": digests_identical,
            "messages_identical": messages_identical,
        },
    }
    if sockets:
        result["sockets"] = bench_sockets(quick, prom_out=prom_out)
    return result


#: Allowed codec slowdown vs the committed BENCH_wire.json before CI fails.
CODEC_REGRESSION_FACTOR = 2.0


def check(
    results: Dict[str, Any],
    min_ratio: float,
    baseline_codec: "Dict[str, Any] | None" = None,
) -> List[str]:
    """Gate the message-plane contract; returns failure descriptions."""
    failures: List[str] = []
    if not results["contract"]["digests_identical"]:
        failures.append(
            "state digests diverge across plane modes/sites — batching changed "
            "protocol outcomes, not just framing"
        )
    if not results["contract"]["messages_identical"]:
        failures.append(
            "protocol message counts differ across plane modes — the batcher "
            "dropped or duplicated messages"
        )
    ratio = results["fanout"]["burst"]["envelope_ratio_vs_off"]
    if ratio < min_ratio:
        failures.append(
            f"burst-mode envelope reduction {ratio:.2f}x is below the "
            f"required {min_ratio:.1f}x on the standard commit-fanout workload"
        )
    if results["fanout"]["burst"]["batched"] == 0:
        failures.append("burst mode coalesced zero messages — the outbox is inert")
    if baseline_codec:
        for op in ("encode_us", "decode_us"):
            current = float(results["codec"][op])
            recorded = float(baseline_codec.get(op, 0.0))
            if recorded > 0 and current > recorded * CODEC_REGRESSION_FACTOR:
                failures.append(
                    f"codec {op} regressed to {current:.3f}us — more than "
                    f"{CODEC_REGRESSION_FACTOR:.0f}x the committed baseline "
                    f"{recorded:.3f}us"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="reduced sizes (CI smoke)")
    parser.add_argument("--out", default=DEFAULT_OUT, help="output JSON path")
    parser.add_argument("--repeats", type=int, default=0, help="override repeat count")
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate the batching contract (exit 1 on failure)",
    )
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=3.0,
        help="required burst-mode envelope reduction (default 3x)",
    )
    parser.add_argument(
        "--no-sockets",
        action="store_true",
        help="skip the real-socket benchmarks (ping-pong + two-process)",
    )
    parser.add_argument(
        "--prom-out",
        default="",
        metavar="FILE",
        help="with sockets enabled, write both transports' telemetry "
        "registries as a Prometheus text-exposition snapshot",
    )
    args = parser.parse_args(argv)

    # The codec regression gate compares against the *committed*
    # BENCH_wire.json; read it before run() can overwrite it (--out
    # defaults to the same path).
    baseline_codec = None
    if args.check and os.path.exists(DEFAULT_OUT):
        try:
            with open(DEFAULT_OUT) as fh:
                baseline_codec = json.load(fh).get("codec")
        except (ValueError, OSError):
            baseline_codec = None

    results = run(
        quick=args.quick,
        repeats=args.repeats,
        sockets=not args.no_sockets,
        prom_out=args.prom_out,
    )
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")

    for mode in MODES:
        row = results["fanout"][mode]
        print(
            f"{mode:6s} best {row['best_s']:.3f}s  {row['commits_per_sec']:>7.1f} commits/s"
            f"  {row['messages']} msgs in {row['envelopes']} envelopes"
            f"  ({row['envelope_ratio_vs_off']:.2f}x vs off)"
        )
    codec = results["codec"]
    print(
        f"\ncodec: {codec['frame_bytes']}B propagate frame, "
        f"encode {codec['encode_us']} us, decode {codec['decode_us']} us"
    )
    print(
        f"setup phase: {results['setup']['off_envelopes']} -> "
        f"{results['setup']['turn_envelopes']} envelopes "
        f"({results['setup']['turn_ratio']:.2f}x) with turn batching"
    )
    if "sockets" in results:
        ping = results["sockets"]["pingpong"]
        print(
            f"sockets: frame latency p50 {ping['frame_p50_us']} us / "
            f"p99 {ping['frame_p99_us']} us, burst {ping['burst']['frames_per_sec']} "
            f"frames/s in {ping['burst']['writes']} writes "
            f"({ping['burst']['frames_coalesced']} coalesced)"
        )
        two = results["sockets"]["two_process"]
        if "commits_per_sec" in two:
            print(
                f"two-process: {two['commits_per_sec']} commits/s over real TCP "
                f"({two['commits']} commits in {two['wall_s']:.3f}s)"
            )
        else:
            print(f"two-process bench failed: {two.get('error', 'unknown')}")
    print(f"wrote {args.out}")
    if args.prom_out and "sockets" in results:
        print(f"prometheus snapshot written to {args.prom_out}")

    if args.check:
        failures = check(results, args.min_ratio, baseline_codec)
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print(f"check passed (min ratio {args.min_ratio:.1f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
