"""E11 (extension) — Adaptive optimism suppression (section 5.2.2 proposal).

The paper concludes its benchmark discussion with: "This suggests that it
may be desirable to suppress optimism when conflict rates exceed a certain
threshold."  We implemented that proposal
(:class:`repro.core.adaptive.AdaptiveOptimismController`) and measure the
trade it makes: under heavy two-party read-modify-write contention, the
governed site suffers fewer conflict rollbacks, at the cost of delaying its
own submissions while suppressed.
"""

import pytest

from repro import Session
from repro.core.adaptive import AdaptiveOptimismController
from repro.bench.report import Table, emit, format_table
from repro import DInt

T = 60.0
ROUNDS = 30
GAP_MS = 40.0


def run_case(governed: bool, seed: int):
    session = Session.simulated(latency_ms=T, seed=seed)
    alice, bob = session.add_sites(2)
    objs = session.replicate(DInt, "x", [alice, bob], initial=0)
    session.settle()
    controller = None
    if governed:
        controller = AdaptiveOptimismController(bob, window=6, enter_threshold=0.1)
        submit = controller.transact
    else:
        submit = bob.transact
    before = session.counters()
    outcomes = []
    for _ in range(ROUNDS):
        alice.transact(lambda: objs[0].set(objs[0].get() + 1))
        outcomes.append(submit(lambda: objs[1].set(objs[1].get() + 1)))
        session.run_for(GAP_MS)
    session.settle()
    after = session.counters()
    assert objs[0].get() == 2 * ROUNDS  # serialization intact either way
    latencies = [o.commit_latency_ms for o in outcomes if o.commit_latency_ms is not None]
    return {
        "retries": after["retries"] - before["retries"],
        "mean_commit_ms": sum(latencies) / len(latencies),
        "suppressions": controller.suppression_entries if controller else 0,
    }


def run_experiment():
    table = Table(
        title=f"E11: adaptive optimism suppression (t = {T:.0f} ms, "
        f"RMW every {GAP_MS:.0f} ms from both parties)",
        headers=["mode", "conflict retries", "mean commit (ms)", "suppression entries"],
    )
    seeds = (1, 2, 3)
    agg = {}
    for governed in (False, True):
        retries, latency, entries = 0, 0.0, 0
        for seed in seeds:
            r = run_case(governed, seed)
            retries += r["retries"]
            latency += r["mean_commit_ms"]
            entries += r["suppressions"]
        agg[governed] = {
            "retries": retries,
            "latency": latency / len(seeds),
            "entries": entries,
        }
        table.add(
            "suppressed (adaptive)" if governed else "raw optimism",
            retries,
            latency / len(seeds),
            entries,
        )
    table.note("suppression trades submission delay for fewer rollbacks")
    return table, agg


def test_e11_suppression(benchmark):
    table, agg = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("E11_suppression", format_table(table))

    # The mechanism engages and reduces conflict retries.
    assert agg[True]["entries"] >= 1
    assert agg[True]["retries"] < agg[False]["retries"]
