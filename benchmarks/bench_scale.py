#!/usr/bin/env python3
"""Multi-tenant SessionHost scale benchmark over real sockets.

Measures the cost of multiplexing many independent collaboration sets
(tenants) behind two :class:`~repro.host.SessionHost` instances in ONE
OS process, connected by real loopback TCP sockets:

* **Setup throughput** — tenants activated per second, where each
  activation runs the full association/invitation/join protocol of
  section 4 across the socket pair.
* **Commit latency** — writes originate at the *non-primary* replica, so
  every commit includes a real guess-validation round trip over TCP
  (p50/p99, open-loop arrivals).
* **Notify lag** — wall-clock time from ``transact()`` at the writer to
  the attached :class:`~repro.core.OptimisticView` observing the value at
  the remote replica.
* **Scaling** — the same open-loop driver runs twice, against a small
  subset of tenants and against the whole population at a higher offered
  rate.  Because tenants share connections, the outbox, and the event
  loop but nothing protocol-level, throughput should grow with the
  offered load while p99 stays bounded (per-collaboration-set commit
  cost, not per-process).

Topology: host A owns site 0 of every tenant (all primaries), host B
owns site 1.  Both hosts share exactly one TCP connection per direction
regardless of tenant count — that shared-link count is reported too.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py            # full run
    PYTHONPATH=src python benchmarks/bench_scale.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_scale.py --quick --check

Writes ``BENCH_scale.json`` at the repo root (see ``--out``); merge into
the trajectory with ``python scripts/bench_trajectory.py``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import socket
import sys
import time
from typing import Dict, List, Optional, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_scale.json")

if __name__ == "__main__":
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro import OptimisticView, SessionHost  # noqa: E402
from repro.transport.tcp import TcpTransport  # noqa: E402
from repro.vtime import VirtualTime  # noqa: E402

HORIZON = VirtualTime(2**62, 2**30)

FULL = {
    "tenants": 1000,
    "setup_concurrency": 64,
    "phases": {
        "small": {"tenants": 100, "rate": 150.0, "duration_s": 6.0},
        "large": {"tenants": 1000, "rate": 450.0, "duration_s": 6.0},
    },
    "max_p99_ms": 1000.0,
    "min_throughput_ratio": 1.5,
}

QUICK = {
    "tenants": 32,
    "setup_concurrency": 16,
    "phases": {
        "small": {"tenants": 8, "rate": 50.0, "duration_s": 2.0},
        "large": {"tenants": 32, "rate": 150.0, "duration_s": 2.0},
    },
    "max_p99_ms": 2000.0,
    "min_throughput_ratio": 1.2,
}


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


async def poll(predicate, what: str, deadline_s: float = 60.0, interval_s: float = 0.002):
    start = time.monotonic()
    while not predicate():
        if time.monotonic() - start > deadline_s:
            raise TimeoutError(f"timed out waiting for {what}")
        await asyncio.sleep(interval_s)


def committed(outcome) -> bool:
    if outcome.aborted_no_retry:
        raise RuntimeError(f"transaction aborted: {outcome.abort_reason}")
    return outcome.committed


class LagView(OptimisticView):
    """Records the first wall-clock instant each value is seen at a replica."""

    def __init__(self, tenant_id: int, seen: Dict[Tuple[int, int], float]):
        self.tenant_id = tenant_id
        self.seen = seen
        self.objects: List = []

    def update(self, changed, snapshot) -> None:
        now = time.perf_counter()
        for obj in changed:
            value = snapshot.read(obj)
            if isinstance(value, int) and value > 0:
                self.seen.setdefault((self.tenant_id, value), now)


class Tenant:
    __slots__ = ("tid", "site_a", "site_b", "obj_a", "obj_b")

    def __init__(self, tid, site_a, site_b, obj_a, obj_b):
        self.tid = tid
        self.site_a = site_a
        self.site_b = site_b
        self.obj_a = obj_a
        self.obj_b = obj_b


async def setup_tenant(
    host_a: SessionHost,
    host_b: SessionHost,
    tid: int,
    seen: Dict[Tuple[int, int], float],
    sem: asyncio.Semaphore,
) -> Tenant:
    """Activate one tenant on both hosts and join its replicas for real.

    Runs the full invitation/join protocol across the socket pair: the
    owner (site 0 on host A) creates the object, association, and
    relationship; the member (site 1 on host B) imports the invitation
    and joins its own local object.
    """
    async with sem:
        session_a = host_a.tenant(tid)
        session_b = host_b.tenant(tid)
        site_a, site_b = session_a.sites[0], session_b.sites[0]

        obj_a = site_a.create_int("doc", initial=0)
        assoc = site_a.create_association("doc.assoc")
        outcome = site_a.transact(lambda: assoc.create_relationship("doc.rel"))
        await poll(lambda: committed(outcome), f"t{tid} create_relationship")
        outcome = site_a.join(assoc, "doc.rel", obj_a)
        await poll(lambda: committed(outcome), f"t{tid} owner join")

        invitation = assoc.make_invitation(note=f"tenant {tid}")
        assoc_b = site_b.import_invitation(invitation, "doc.assoc")
        await poll(
            lambda: "doc.rel" in dict(assoc_b.value_at(HORIZON, committed_only=True)),
            f"t{tid} association sync",
        )
        obj_b = site_b.create_int("doc", initial=0)
        outcome = site_b.join(assoc_b, "doc.rel", obj_b)
        await poll(lambda: committed(outcome), f"t{tid} member join")

        # Notify lag is observed at the primary's replica (host A): the
        # writer sits at host B, so both the commit round trip and the
        # view notification cross the real sockets.
        obj_a.attach(LagView(tid, seen), mode="optimistic")
        return Tenant(tid, site_a, site_b, obj_a, obj_b)


async def run_phase(
    name: str,
    tenants: List[Tenant],
    rate: float,
    duration_s: float,
    seen: Dict[Tuple[int, int], float],
    marker_start: int,
) -> Tuple[dict, int]:
    """Open-loop driver: Poisson-ish fixed-rate arrivals, never waits for
    a commit before issuing the next write.  Returns (report, next_marker)."""
    planned = max(1, int(rate * duration_s))
    interval = 1.0 / rate
    commit_lats: List[float] = []
    last_commit_at = [0.0]
    issued: List[Tuple[int, int, float, object]] = []  # (tid, marker, t0, outcome)
    last_marker: Dict[int, int] = {}

    start = time.perf_counter()
    next_due = start
    marker = marker_start
    for i in range(planned):
        tenant = tenants[i % len(tenants)]
        marker += 1
        t0 = time.perf_counter()
        outcome = tenant.site_b.transact(lambda o=tenant.obj_b, m=marker: o.set(m))

        def on_commit(_o, t0=t0):
            now = time.perf_counter()
            commit_lats.append(now - t0)
            last_commit_at[0] = now

        outcome.on_commit(on_commit)
        issued.append((tenant.tid, marker, t0, outcome))
        last_marker[tenant.tid] = marker
        next_due += interval
        delay = next_due - time.perf_counter()
        await asyncio.sleep(delay if delay > 0 else 0)

    # Drain: every outcome resolves, then every tenant's final value is
    # visible through the remote view (intermediate markers may legally be
    # coalesced away by view notification batching).
    await poll(
        lambda: all(o.committed or o.aborted_no_retry for _, _, _, o in issued),
        f"{name}: outcomes resolved",
        deadline_s=30.0,
    )
    await poll(
        lambda: all((tid, m) in seen for tid, m in last_marker.items()),
        f"{name}: final values visible remotely",
        deadline_s=30.0,
    )

    aborted = sum(1 for _, _, _, o in issued if o.aborted_no_retry)
    n_committed = len(commit_lats)
    elapsed = max(last_commit_at[0] - start, 1e-9)
    lags = [
        seen[(tid, m)] - t0
        for tid, m, t0, o in issued
        if o.committed and (tid, m) in seen
    ]
    report = {
        "tenants": len(tenants),
        "offered_per_sec": rate,
        "arrivals": planned,
        "committed": n_committed,
        "aborted": aborted,
        "commits_per_sec": round(n_committed / elapsed, 1),
        "commit_ms": dist_ms(commit_lats),
        "notify_lag_ms": dist_ms(lags),
        "notify_samples": len(lags),
    }
    return report, marker


def dist_ms(samples: List[float]) -> dict:
    if not samples:
        return {"p50": None, "p99": None, "mean": None, "max": None}
    ordered = sorted(samples)

    def pct(q: float) -> float:
        idx = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[idx] * 1000.0

    return {
        "p50": round(pct(0.50), 3),
        "p99": round(pct(0.99), 3),
        "mean": round(sum(ordered) / len(ordered) * 1000.0, 3),
        "max": round(ordered[-1] * 1000.0, 3),
    }


async def run(config: dict, mode: str) -> dict:
    port_a, port_b = free_port(), free_port()
    addrs = {0: ("127.0.0.1", port_a), 1: ("127.0.0.1", port_b)}
    transport_a = TcpTransport(addrs, local_sites={0}, fail_after_ms=60_000.0)
    transport_b = TcpTransport(addrs, local_sites={1}, fail_after_ms=60_000.0)
    host_a = SessionHost(transport_a, local_sites=(0,), roster=(0, 1))
    host_b = SessionHost(transport_b, local_sites=(1,), roster=(0, 1))
    await transport_a.start()
    await transport_b.start()

    seen: Dict[Tuple[int, int], float] = {}
    n_tenants = config["tenants"]
    sem = asyncio.Semaphore(config["setup_concurrency"])

    setup_start = time.perf_counter()
    tenants = list(
        await asyncio.gather(
            *(setup_tenant(host_a, host_b, tid, seen, sem) for tid in range(1, n_tenants + 1))
        )
    )
    setup_wall = time.perf_counter() - setup_start

    phases = {}
    marker = 0
    for phase_name, phase_cfg in config["phases"].items():
        subset = tenants[: phase_cfg["tenants"]]
        report, marker = await run_phase(
            phase_name, subset, phase_cfg["rate"], phase_cfg["duration_s"], seen, marker
        )
        phases[phase_name] = report

    small, large = phases["small"], phases["large"]
    scaling = {
        "tenant_ratio": round(large["tenants"] / small["tenants"], 2),
        "throughput_ratio": round(
            large["commits_per_sec"] / max(small["commits_per_sec"], 1e-9), 3
        ),
        "p99_commit_ratio": round(
            large["commit_ms"]["p99"] / max(small["commit_ms"]["p99"], 1e-9), 3
        ),
    }

    results = {
        "schema": "bench_scale/v1",
        "mode": mode,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": sys.version.split()[0],
        "config": {
            k: v for k, v in config.items() if k not in ("phases",)
        },
        "setup": {
            "tenants": n_tenants,
            "wall_s": round(setup_wall, 3),
            "tenants_per_sec": round(n_tenants / setup_wall, 1),
        },
        "phases": phases,
        "scaling": scaling,
        "transport": {
            "frames_sent": transport_a.frames_sent + transport_b.frames_sent,
            "frames_received": transport_a.frames_received + transport_b.frames_received,
            "writes": transport_a.writes + transport_b.writes,
            "frames_coalesced": transport_a.frames_coalesced + transport_b.frames_coalesced,
            "peer_links": {
                "host_a": len(getattr(transport_a, "_links", {})),
                "host_b": len(getattr(transport_b, "_links", {})),
            },
        },
        "hosts": {"a": host_a.stats(), "b": host_b.stats()},
    }

    # Teardown demonstrates eviction at scale: every tenant detaches
    # cleanly while the shared transports keep running, then stop.
    for tid in list(host_a.active_tenants):
        host_a.evict(tid)
    for tid in list(host_b.active_tenants):
        host_b.evict(tid)
    results["hosts"]["a_after_eviction"] = host_a.stats()
    results["hosts"]["b_after_eviction"] = host_b.stats()
    await transport_a.stop()
    await transport_b.stop()
    return results


def check(results: dict, config: dict) -> List[str]:
    failures = []
    if results["setup"]["tenants"] < config["tenants"]:
        failures.append("setup activated fewer tenants than configured")
    for name, phase in results["phases"].items():
        if phase["aborted"]:
            failures.append(f"{name}: {phase['aborted']} aborted transactions")
        if phase["committed"] < 0.98 * phase["arrivals"]:
            failures.append(f"{name}: committed {phase['committed']}/{phase['arrivals']}")
        for metric in ("commit_ms", "notify_lag_ms"):
            p99 = phase[metric]["p99"]
            if p99 is None or p99 > config["max_p99_ms"]:
                failures.append(f"{name}: {metric} p99 {p99} > {config['max_p99_ms']}ms")
    ratio = results["scaling"]["throughput_ratio"]
    if ratio < config["min_throughput_ratio"]:
        failures.append(
            f"throughput did not scale with tenant count: ratio {ratio} < "
            f"{config['min_throughput_ratio']}"
        )
    for side, n_links in results["transport"]["peer_links"].items():
        if n_links > 1:
            failures.append(f"{side}: {n_links} peer links (connections not shared)")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="reduced CI-sized run")
    parser.add_argument("--check", action="store_true", help="gate on scaling regressions")
    parser.add_argument("--out", default=DEFAULT_OUT, metavar="FILE")
    args = parser.parse_args(argv)

    config = QUICK if args.quick else FULL
    mode = "quick" if args.quick else "full"
    results = asyncio.run(run(config, mode))

    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")

    setup = results["setup"]
    print(
        f"setup: {setup['tenants']} tenants joined over real sockets in "
        f"{setup['wall_s']}s ({setup['tenants_per_sec']}/s)"
    )
    for name, phase in results["phases"].items():
        print(
            f"{name}: {phase['tenants']} tenants, {phase['commits_per_sec']} commits/s "
            f"(offered {phase['offered_per_sec']}/s), commit p50/p99 "
            f"{phase['commit_ms']['p50']}/{phase['commit_ms']['p99']}ms, "
            f"notify-lag p50/p99 {phase['notify_lag_ms']['p50']}/"
            f"{phase['notify_lag_ms']['p99']}ms"
        )
    print(
        f"scaling: {results['scaling']['tenant_ratio']}x tenants -> "
        f"{results['scaling']['throughput_ratio']}x throughput, p99 ratio "
        f"{results['scaling']['p99_commit_ratio']}"
    )
    print(f"wrote {args.out}")

    if args.check:
        failures = check(results, config)
        if failures:
            for failure in failures:
                print(f"CHECK FAIL: {failure}")
            return 1
        print("CHECK OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
