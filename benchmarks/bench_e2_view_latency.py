"""E2 — View notification latency vs. the section 5.1.2 analysis.

Paper claims (one-way delay t):

* optimistic update notification: immediate at the origin, t at remote
  sites;
* pessimistic update notification: 2t at the originating site, no more
  than 3t at a non-originating site;
* "an optimistic view notification will occur 2t ms before the
  corresponding pessimistic view notification".
"""

import pytest

from repro.bench import attach_probe, two_party_scenario
from repro.bench.report import Table, emit, format_table

T = 50.0


def run_experiment():
    table = Table(
        title=f"E2: view notification latency (t = {T:.0f} ms)",
        headers=["view kind", "site", "paper", "measured_ms"],
    )

    # Origin = bob (remote from the primary at alice): the general case.
    scenario = two_party_scenario(latency_ms=T, delegation_enabled=False)
    opt_origin = attach_probe(scenario.bob, [scenario.b], "optimistic")
    opt_remote = attach_probe(scenario.alice, [scenario.a], "optimistic")
    pess_origin = attach_probe(scenario.bob, [scenario.b], "pessimistic")
    pess_remote = attach_probe(scenario.alice, [scenario.a], "pessimistic")

    t0 = scenario.session.scheduler.now
    scenario.bob.transact(lambda: scenario.b.set(42))
    scenario.session.settle()

    rows = [
        ("optimistic", "origin", "0", opt_origin.first_seen("shared", 42) - t0),
        ("optimistic", "remote", "t", opt_remote.first_seen("shared", 42) - t0),
        ("pessimistic", "origin", "2t", pess_origin.first_seen("shared", 42) - t0),
        ("pessimistic", "remote", "<=3t", pess_remote.first_seen("shared", 42) - t0),
    ]
    for row in rows:
        table.add(*row)

    gap = pess_origin.first_seen("shared", 42) - opt_origin.first_seen("shared", 42)
    table.note(f"optimistic leads pessimistic at origin by {gap:.0f} ms (paper: 2t)")
    return table, dict(((k, s), m) for k, s, _p, m in rows), gap


def test_e2_view_latency(benchmark):
    table, measured, gap = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("E2_view_latency", format_table(table))

    assert measured[("optimistic", "origin")] == 0.0
    assert measured[("optimistic", "remote")] == pytest.approx(T)
    assert measured[("pessimistic", "origin")] == pytest.approx(2 * T)
    assert measured[("pessimistic", "remote")] <= 3 * T + 1.0
    assert gap == pytest.approx(2 * T)
