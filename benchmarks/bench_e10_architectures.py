"""E10 — Architecture comparison: interactive responsiveness (sections 1 & 6).

The paper's motivating claim: replicated architectures with optimistic
concurrency control give single-user GUI responsiveness at the initiating
site, while pessimistic (database-style) locking and non-replicated
(shared-server) architectures pay network round trips before the user's own
display can echo.

We measure, for 2..8 parties at one-way delay t:

* local-echo latency at a non-privileged site (the user's own display),
* commit/stability latency at the origin,
* remote visibility latency (when other users see the update).
"""

import pytest

from repro import Session
from repro.baselines import CentralizedSystem, GvtSystem, LockingSystem
from repro.bench.report import Table, emit, format_table
from repro import DInt

T = 50.0


def decaf_point(n_sites):
    session = Session.simulated(latency_ms=T)
    sites = session.add_sites(n_sites)
    objs = session.replicate(DInt, "x", sites, initial=0)
    session.settle()
    origin = sites[-1]
    out = origin.transact(lambda: objs[-1].set(1))
    echo = out.local_apply_time_ms - out.start_time_ms
    session.settle()
    return {
        "echo": echo,
        "commit": out.commit_latency_ms,
        "remote_visible": T,  # one WRITE hop, by protocol (asserted in E2)
    }


def baseline_point(cls, n_sites):
    system = cls(n_sites=n_sites, latency_ms=T)
    if isinstance(system, GvtSystem):
        system.run_for(4 * n_sites * T)
    t0 = system.scheduler.now
    probe = system.issue_update(n_sites - 1, 1)
    system.run_for(20 * n_sites * T + 1000)
    visible = [
        probe.visible_ms[s] - t0 for s in range(n_sites) if s != n_sites - 1
    ]
    return {
        "echo": probe.local_echo_latency(),
        "commit": probe.commit_latency_at(n_sites - 1),
        "remote_visible": min(visible) if visible else None,
    }


def run_experiment():
    table = Table(
        title=f"E10: architecture comparison (t = {T:.0f} ms, update from a non-privileged site)",
        headers=["parties", "architecture", "local echo", "commit@origin", "first remote visible"],
    )
    results = {}
    for n in (2, 4, 8):
        rows = {
            "DECAF (replicated+optimistic)": decaf_point(n),
            "GVT-sweep groupware": baseline_point(GvtSystem, n),
            "primary-copy locking": baseline_point(LockingSystem, n),
            "centralized server": baseline_point(CentralizedSystem, n),
        }
        for name, r in rows.items():
            results[(n, name)] = r
            table.add(n, name, r["echo"], r["commit"], r["remote_visible"])
    table.note("paper: the GUI must be as responsive as a single-user GUI at sites that initiate updates")
    return table, results


def test_e10_architectures(benchmark):
    table, results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("E10_architectures", format_table(table))

    for n in (2, 4, 8):
        decaf = results[(n, "DECAF (replicated+optimistic)")]
        gvt = results[(n, "GVT-sweep groupware")]
        locking = results[(n, "primary-copy locking")]
        central = results[(n, "centralized server")]
        # Optimistic replicated architectures echo instantly...
        assert decaf["echo"] == 0.0
        assert gvt["echo"] == 0.0
        # ...while locking and centralized pay a 2t round trip first.
        assert locking["echo"] == pytest.approx(2 * T)
        assert central["echo"] == pytest.approx(2 * T)
        # DECAF commits in 2t regardless of n; the GVT sweep's commit grows.
        assert decaf["commit"] == pytest.approx(2 * T)
        assert gvt["commit"] > decaf["commit"]
    # GVT commit grows with the network; DECAF stays flat.
    assert (
        results[(8, "GVT-sweep groupware")]["commit"]
        > results[(2, "GVT-sweep groupware")]["commit"]
    )
    assert (
        results[(8, "DECAF (replicated+optimistic)")]["commit"]
        == results[(2, "DECAF (replicated+optimistic)")]["commit"]
    )
