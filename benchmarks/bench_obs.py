"""Observability overhead benchmark: obs-enabled vs obs-disabled timings.

Runs the same E6-style commit-throughput workload as
``benchmarks/bench_hotpaths.py`` in three configurations:

* ``baseline``  — a plain session, bus inactive (reference measurement),
* ``disabled``  — identical to baseline; a second interleaved series that
  pairs with it, so the two differ only by scheduling noise,
* ``enabled``   — ``session.observe()`` on, full event recording.

The zero-overhead-when-disabled contract has two halves and the check
gate (``--check``) verifies both:

1. *Functional*: with the bus inactive, ``EventBus.emit`` is never
   entered (the ``if bus.active:`` guards short-circuit), so the emit
   counter and the event buffer both stay at zero.  This is the
   deterministic half — it catches a bus left active by default or an
   unguarded emission sneaking onto a hot path.
2. *Wall-clock*: the paired baseline/disabled series must agree within
   the tolerance (default 5%).  A disabled bus costs one attribute load
   and one branch per instrumentation point, far below measurement
   noise, so a real divergence here means the guard pattern broke.

Full recording is *not* gated: capturing ~18 events per transaction has
a real, legitimate cost.  ``BENCH_obs.json`` records the enabled vs
disabled delta (and the per-event marginal cost) so the perf trajectory
tracks instrumentation cost from day one.

The offline causal-analysis engine (``repro.obs.causal``) and the
streaming health detectors (``repro.obs.health``) are timed over the
recorded timeline as a fourth, ungated series — they run after the fact
on exported data, so their cost is an analyst-side budget, not protocol
overhead.  The per-event figures land in the trajectory so a
super-linear regression in the DAG builder shows up as a slope change.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py            # full run
    PYTHONPATH=src python benchmarks/bench_obs.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_obs.py --quick --check
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time
from typing import Any, Dict, List

if __name__ == "__main__":  # allow running straight from a checkout
    _root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    _src = os.path.join(_root, "src")
    if _src not in sys.path:
        sys.path.insert(0, _src)

from repro import Session
from repro import DInt

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_obs.json")

FULL = {"transactions": 600, "repeats": 9}
QUICK = {"transactions": 300, "repeats": 7}


def bench_commit_throughput(transactions: int, observe: bool) -> Dict[str, Any]:
    """One timed run of sequential committed transactions on 3 sites."""
    session = Session.simulated(latency_ms=20.0)
    if observe:
        session.observe()
    sites = session.add_sites(3)
    objs = session.replicate(DInt, "counter", sites, initial=0)
    session.settle()
    # Cyclic-GC debt from a previous run (e.g. an enabled run's freed
    # event buffer) would otherwise be paid inside whichever timed region
    # crosses the collection threshold — a systematic, not random, skew.
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        cpu_start = time.process_time()
        for i in range(transactions):
            out = sites[0].transact(lambda i=i: objs[0].set(i + 1))
            session.settle()
            assert out.committed
        cpu_s = time.process_time() - cpu_start
        wall_s = time.perf_counter() - start
    finally:
        gc.enable()
    return {
        "wall_s": wall_s,
        "cpu_s": cpu_s,
        "events": len(session.bus.events),
        "emit_calls": session.bus._seq,
    }


def bench_analysis_cost(transactions: int, repeats: int) -> Dict[str, Any]:
    """Offline analysis cost over one recorded timeline (ungated).

    Records a timeline once, then times ``analyze_events`` (full causal
    DAG + critical paths + guess graph) and ``run_health`` (streaming
    detector replay) over it, best-of ``repeats``.
    """
    from repro.obs import analyze_events, run_health

    session = Session.simulated(latency_ms=20.0)
    session.observe()
    sites = session.add_sites(3)
    objs = session.replicate(DInt, "counter", sites, initial=0)
    session.settle()
    for i in range(transactions):
        out = sites[0].transact(lambda i=i: objs[0].set(i + 1))
        session.settle()
        assert out.committed
    events = list(session.bus.events)

    def best_of(fn) -> float:
        gc.collect()
        gc.disable()
        try:
            times = []
            for _ in range(repeats):
                start = time.perf_counter()
                fn(events)
                times.append(time.perf_counter() - start)
        finally:
            gc.enable()
        return min(times)

    analyze_s = best_of(analyze_events)
    health_s = best_of(run_health)
    n = len(events)
    return {
        "events": n,
        "analyze_best_s": round(analyze_s, 6),
        "analyze_us_per_event": round(analyze_s / n * 1e6, 3),
        "health_best_s": round(health_s, 6),
        "health_us_per_event": round(health_s / n * 1e6, 3),
    }


def bench_traced_sockets(quick: bool) -> Dict[str, Any]:
    """Tracing overhead on the real TCP path: untraced vs traced ping-pong.

    Two :class:`TcpTransport` instances exchange frames over localhost
    sockets; the traced series runs with both transports' buses recording
    (message_sent/message_delivered pairs plus trace-context headers on
    every frame) — the exact configuration
    ``examples/two_process_tcp.py --trace-dir`` deploys.

    Two workloads run, interleaved, and the gated statistic is best-of
    p50 RTT with the untraced series' own spread as the noise floor:

    * ``envelope`` (**gated**) — an :class:`Envelope` of ``BATCH``
      CommitMsgs per frame.  This is the message plane's designed unit:
      the batching layer (repro.wire.batch.Outbox) coalesces each
      protocol turn's fan-out into one envelope, and the trace header is
      per *frame*, so this is the cost profile a DECAF session actually
      pays.
    * ``single`` (reported, ungated) — one bare CommitMsg per frame, the
      adversarial worst case where the fixed per-frame tracing cost
      (four bus emissions, one header encode+decode) is largest relative
      to a ~100us localhost RTT.  Tracked in the trajectory so the
      absolute per-frame cost stays visible.

    A third envelope series, ``sampled`` (**gated**), runs with the buses
    recording but a 1% head sampler on both transports — the production
    configuration the sampling layer exists for.  99% of frames then pay
    only the sampler hash plus one counter increment, so the series must
    sit within ``max(SAMPLED_TOLERANCE_PCT,`` measured noise``)`` of the
    *untraced* baseline: sampling is only worth deploying if the
    not-sampled path costs as little as tracing being off.
    """
    import asyncio
    import socket

    from repro.core.messages import CommitMsg, Envelope
    from repro.obs.sample import TraceSampler
    from repro.transport.tcp import TcpTransport
    from repro.vtime import VirtualTime

    frames = 150 if quick else 400
    repeats = 3 if quick else 5
    batch = 8
    sample_rate = 0.01

    def free_port() -> int:
        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            return sock.getsockname()[1]

    async def pingpong(mode: str, per_frame: int) -> Dict[str, Any]:
        addrs = {0: ("127.0.0.1", free_port()), 1: ("127.0.0.1", free_port())}
        samplers = (
            (TraceSampler(sample_rate), TraceSampler(sample_rate))
            if mode == "sampled"
            else (None, None)
        )
        a = TcpTransport(addrs, local_sites={0}, sampler=samplers[0])
        b = TcpTransport(addrs, local_sites={1}, sampler=samplers[1])
        if mode in ("traced", "sampled"):
            a.bus.enable()
            b.bus.enable()
        got = asyncio.Event()
        a.register(0, lambda src, payload: got.set())
        b.register(1, lambda src, payload: b.send(1, 0, payload))
        await a.start()
        await b.start()

        async def rtt_once(i: int) -> float:
            got.clear()
            if per_frame == 1:
                msg: Any = CommitMsg(VirtualTime(i, 0), i)
            else:
                msg = Envelope(
                    tuple(CommitMsg(VirtualTime(i * per_frame + j, 0), j) for j in range(per_frame))
                )
            start = time.perf_counter()
            a.send(0, 1, msg)
            await asyncio.wait_for(got.wait(), timeout=10.0)
            return time.perf_counter() - start

        for i in range(20):  # warmup: dial, codec caches, event-loop jit
            await rtt_once(i)
        rtts = sorted([await rtt_once(i) for i in range(frames)])
        p50 = rtts[len(rtts) // 2]
        out = {
            "p50_s": p50,
            "events": len(a.bus.events) + len(b.bus.events),
            "emit_calls": a.bus._seq + b.bus._seq,
            "sends_sampled_out": a.sends_sampled_out + b.sends_sampled_out,
            "deliveries_sampled_out": a.deliveries_sampled_out + b.deliveries_sampled_out,
        }
        await a.stop()
        await b.stop()
        return out

    configs = [
        (batch, "untraced"),
        (batch, "traced"),
        (batch, "sampled"),
        (1, "untraced"),
        (1, "traced"),
    ]
    runs: Dict[Any, List[Dict[str, Any]]] = {}
    for _ in range(repeats):  # interleave so drift hits every series equally
        for per_frame, mode in configs:
            runs.setdefault((per_frame, mode), []).append(
                asyncio.run(pingpong(mode, per_frame))
            )

    def best(per_frame: int, mode: str) -> float:
        return min(r["p50_s"] for r in runs[(per_frame, mode)])

    untraced_p50 = best(batch, "untraced")
    traced_p50 = best(batch, "traced")
    sampled_p50 = best(batch, "sampled")
    # The noise floor is the worst within-series spread among the series
    # whose *difference* the gates measure: when one configuration's own
    # repeats disagree by X%, a cross-configuration delta below X% is not
    # resolvable on this machine, so the tolerance degrades to X honestly.
    def spread(per_frame: int, mode: str) -> float:
        series = [r["p50_s"] for r in runs[(per_frame, mode)]]
        return (max(series) / min(series) - 1.0) * 100

    noise_pct = max(spread(batch, "untraced"), spread(batch, "sampled"))
    sampled_runs = runs[(batch, "sampled")]
    return {
        "harness": "in-process pair",
        "frames": frames,
        "repeats": repeats,
        "batch": batch,
        "untraced_p50_us": round(untraced_p50 * 1e6, 1),
        "traced_p50_us": round(traced_p50 * 1e6, 1),
        "traced_overhead_pct": round((traced_p50 / untraced_p50 - 1.0) * 100, 2),
        "noise_pct": round(noise_pct, 2),
        "sampled_rate": sample_rate,
        "sampled_p50_us": round(sampled_p50 * 1e6, 1),
        "sampled_overhead_pct": round((sampled_p50 / untraced_p50 - 1.0) * 100, 2),
        "sampled_events": sampled_runs[0]["events"],
        "sampled_sends_dropped": sum(r["sends_sampled_out"] for r in sampled_runs),
        "sampled_deliveries_dropped": sum(
            r["deliveries_sampled_out"] for r in sampled_runs
        ),
        "single_untraced_p50_us": round(best(1, "untraced") * 1e6, 1),
        "single_traced_p50_us": round(best(1, "traced") * 1e6, 1),
        "single_overhead_pct": round(
            (best(1, "traced") / best(1, "untraced") - 1.0) * 100, 2
        ),
        "untraced_emit_calls": runs[(batch, "untraced")][0]["emit_calls"]
        + runs[(1, "untraced")][0]["emit_calls"],
        "traced_events": runs[(batch, "traced")][0]["events"],
    }


def bench_sketch(quick: bool) -> Dict[str, Any]:
    """Quantile-sketch accuracy and throughput on adversarial distributions.

    For each distribution the exact quantiles come from the sorted sample;
    the sketch's estimates must land within its configured relative-error
    bound (**gated** by ``--check``).  The distributions are chosen to
    stress different failure modes: log-uniform spans many orders of
    magnitude (bucket-index range), lognormal is the latency-shaped
    common case, bimodal puts mass at two widely separated modes
    (interpolation between them is where naive fixed-bucket histograms
    fail), pareto is heavy-tailed (p99 far from the mass), and constant
    collapses to a single bucket (rank arithmetic edge case).

    Also times single-observation cost and a 16-way shard merge — the
    operations the per-tenant aggregation layer performs on its hot path.
    """
    import math
    import random

    from repro.obs.sketch import DEFAULT_RELATIVE_ACCURACY, QuantileSketch

    n = 5_000 if quick else 20_000
    rng = random.Random(0x5EED)
    distributions: Dict[str, List[float]] = {
        "lognormal": [rng.lognormvariate(3.0, 2.0) for _ in range(n)],
        "loguniform": [10.0 ** rng.uniform(-3.0, 6.0) for _ in range(n)],
        "bimodal": [
            rng.gauss(1.0, 0.05) if rng.random() < 0.5 else rng.gauss(5000.0, 100.0)
            for _ in range(n)
        ],
        "pareto": [rng.paretovariate(1.2) for _ in range(n)],
        "constant": [42.0] * n,
    }
    quantiles = (0.5, 0.9, 0.99)

    def exact(sorted_values: List[float], q: float) -> float:
        return sorted_values[min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1)))]

    per_dist: Dict[str, Any] = {}
    worst = 0.0
    for name, values in distributions.items():
        sketch = QuantileSketch()
        for v in values:
            sketch.observe(abs(v))
        ordered = sorted(abs(v) for v in values)
        errors = {}
        for q in quantiles:
            true = exact(ordered, q)
            est = sketch.quantile(q)
            rel = abs(est - true) / true if true else abs(est - true)
            errors[f"p{int(q * 100)}_rel_err"] = round(rel, 6)
            worst = max(worst, rel)
        per_dist[name] = {"buckets": len(sketch.buckets), **errors}

    # Throughput: observe cost on the lognormal stream, then a 16-way merge
    # of shards of that stream (the cross-site aggregation operation).
    stream = [abs(v) for v in distributions["lognormal"]]
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        timing_sketch = QuantileSketch()
        for v in stream:
            timing_sketch.observe(v)
        observe_s = time.perf_counter() - start
        shards = []
        for i in range(16):
            shard = QuantileSketch()
            for v in stream[i::16]:
                shard.observe(v)
            shards.append(shard)
        start = time.perf_counter()
        merged = shards[0].copy()
        for shard in shards[1:]:
            merged.merge(shard)
        merge_s = time.perf_counter() - start
    finally:
        gc.enable()
    assert merged.total == timing_sketch.total
    return {
        "samples_per_distribution": n,
        "relative_accuracy": DEFAULT_RELATIVE_ACCURACY,
        "worst_rel_err": round(worst, 6),
        "observe_ns": round(observe_s / n * 1e9, 1),
        "merge_16_shards_us": round(merge_s * 1e6, 1),
        "distributions": per_dist,
    }


def bench_tenant_agg(quick: bool) -> Dict[str, Any]:
    """Windowed per-tenant aggregation at fleet scale (≥100 tenants).

    Drives :class:`~repro.obs.agg.TelemetryAggregator` with a synthetic
    commit stream spread over 120 concurrent collaboration sets (tenants)
    and several windows, split across 4 per-site aggregators that are then
    fused with :func:`~repro.obs.agg.merge_agg_snapshots` — the exact
    shape ``repro top`` consumes.  Reports ingest throughput and the
    snapshot/merge cost, and asserts every tenant survives the pipeline.
    """
    import random

    from repro.obs.agg import TelemetryAggregator, merge_agg_snapshots

    tenants = 120
    events_per_tenant = 20 if quick else 60
    sites = 4
    rng = random.Random(0xA66)
    aggs = [
        TelemetryAggregator(window_ms=1000.0, keep_windows=8, site=s) for s in range(sites)
    ]
    total_events = tenants * events_per_tenant
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        for i in range(events_per_tenant):
            time_ms = i * 250.0  # 4 events per tenant per window
            for t in range(tenants):
                agg = aggs[t % sites]
                tenant = f"obj:doc{t}"
                agg.inc(tenant, "commits", time_ms)
                agg.observe(tenant, "commit_latency_ms", time_ms, rng.lognormvariate(3.0, 0.7))
        ingest_s = time.perf_counter() - start
        start = time.perf_counter()
        snapshots = [agg.snapshot() for agg in aggs]
        snapshot_s = time.perf_counter() - start
        start = time.perf_counter()
        merged = merge_agg_snapshots(*snapshots)
        merge_s = time.perf_counter() - start
    finally:
        gc.enable()
    merged_tenants = {t for w in merged["windows"] for t in w["tenants"]}
    assert len(merged_tenants) == tenants, (len(merged_tenants), tenants)
    commits = sum(
        cell["counters"].get("commits", 0)
        for w in merged["windows"]
        for cell in w["tenants"].values()
    )
    return {
        "tenants": tenants,
        "sites": sites,
        "events": total_events,
        "windows_retained": len(merged["windows"]),
        "merged_commits": commits,
        "ingest_us_per_event": round(ingest_s / (total_events * 2) * 1e6, 3),
        "snapshot_ms": round(snapshot_s * 1e3, 3),
        "merge_ms": round(merge_s * 1e3, 3),
    }


def run(quick: bool = False, repeats: int = 0, sockets: bool = True) -> Dict[str, Any]:
    cfg = QUICK if quick else FULL
    transactions = cfg["transactions"]
    repeats = repeats or cfg["repeats"]

    runs: Dict[str, List[Dict[str, Any]]] = {"baseline": [], "disabled": [], "enabled": []}
    # Untimed warmup: the very first session pays import and allocator
    # warmup, which would otherwise bias whichever series runs first.
    bench_commit_throughput(transactions, observe=False)
    # Interleave the modes so drift (thermal, scheduling) hits all three
    # series equally; gate on best-of to shed one-off stalls.
    for _ in range(repeats):
        runs["baseline"].append(bench_commit_throughput(transactions, observe=False))
        runs["disabled"].append(bench_commit_throughput(transactions, observe=False))
        runs["enabled"].append(bench_commit_throughput(transactions, observe=True))

    def summarize(mode: str) -> Dict[str, Any]:
        walls = [r["wall_s"] for r in runs[mode]]
        best = min(walls)
        return {
            "wall_s": [round(w, 6) for w in walls],
            "best_s": round(best, 6),
            "best_cpu_s": round(min(r["cpu_s"] for r in runs[mode]), 6),
            "commits_per_sec": round(transactions / best, 1),
            "events": runs[mode][0]["events"],
            "emit_calls": runs[mode][0]["emit_calls"],
        }

    summary = {mode: summarize(mode) for mode in runs}
    disabled_s = summary["disabled"]["best_s"]
    enabled_s = summary["enabled"]["best_s"]
    events = summary["enabled"]["events"]
    # The gated statistic is the ratio of best-of CPU times: the workload
    # is pure CPU (simulated network), timing noise is one-sided (stalls
    # only ever slow a run down), and process_time is blind to scheduler
    # preemption — the dominant noise source on shared CI machines.
    best_ratio = summary["disabled"]["best_cpu_s"] / summary["baseline"]["best_cpu_s"]
    # Within-series spread of the baseline is the machine's demonstrated
    # measurement noise for this exact workload; the check gate widens its
    # tolerance to at least this, so a 5% contract is enforced for real on
    # quiet machines and degrades honestly instead of flaking on loaded ones.
    baseline_cpu = [r["cpu_s"] for r in runs["baseline"]]
    spread_pct = (max(baseline_cpu) / min(baseline_cpu) - 1.0) * 100
    result = {
        "schema": "bench_obs/v1",
        "mode": "quick" if quick else "full",
        "python": sys.version.split()[0],
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "transactions": transactions,
        "repeats": repeats,
        "modes": summary,
        "analysis": bench_analysis_cost(transactions, min(repeats, 3)),
        "overhead": {
            "disabled_vs_baseline_pct": round((best_ratio - 1.0) * 100, 2),
            "baseline_noise_pct": round(spread_pct, 2),
            "enabled_vs_disabled_pct": round((enabled_s / disabled_s - 1.0) * 100, 2),
            "recording_us_per_event": (
                round((enabled_s - disabled_s) / events * 1e6, 3) if events else None
            ),
        },
    }
    result["sketch"] = bench_sketch(quick)
    result["tenant_agg"] = bench_tenant_agg(quick)
    if sockets:
        result["sockets"] = bench_traced_sockets(quick)
    return result


#: Allowed traced-vs-untraced p50 RTT overhead on the real socket path.
#: Tracing adds ~4 bus emissions and one TraceContext per round trip —
#: single-digit microseconds against a localhost RTT two orders larger.
SOCKET_TOLERANCE_PCT = 10.0

#: Allowed 1%-sampled-vs-untraced p50 RTT overhead (floor; the measured
#: untraced noise widens it).  The not-sampled path is one sha256 of the
#: trace id (memoized per trace) plus a counter increment — it must cost
#: no more than tracing being off, or sampling defeats its own purpose.
SAMPLED_TOLERANCE_PCT = 5.0

#: Margin over the sketch's configured relative accuracy allowed for the
#: empirical quantile error: rank interpolation against a finite sample
#: adds up to one sample-spacing of quantization on top of the bucket
#: relative-error guarantee.
SKETCH_ERR_MARGIN = 1.05


def check(results: Dict[str, Any], tolerance_pct: float) -> List[str]:
    """Gate the zero-overhead-when-disabled contract; returns failures."""
    failures: List[str] = []
    modes = results["modes"]
    for mode in ("baseline", "disabled"):
        if modes[mode]["emit_calls"] != 0:
            failures.append(
                f"{mode}: EventBus.emit entered {modes[mode]['emit_calls']} times "
                "with the bus inactive — an emission guard is missing or broken"
            )
        if modes[mode]["events"] != 0:
            failures.append(f"{mode}: {modes[mode]['events']} events recorded on an idle bus")
    if modes["enabled"]["events"] == 0:
        failures.append("enabled: observe() recorded no events — instrumentation is dead")
    disabled_pct = abs(results["overhead"]["disabled_vs_baseline_pct"])
    effective_pct = max(tolerance_pct, results["overhead"]["baseline_noise_pct"])
    if disabled_pct > effective_pct:
        failures.append(
            f"disabled-mode CPU time diverges {disabled_pct:.2f}% from its paired "
            f"baseline (tolerance {tolerance_pct:.1f}%, machine noise "
            f"{results['overhead']['baseline_noise_pct']:.1f}%)"
        )
    sockets = results.get("sockets")
    if sockets:
        if sockets["untraced_emit_calls"] != 0:
            failures.append(
                f"sockets: untraced transports entered EventBus.emit "
                f"{sockets['untraced_emit_calls']} times — the zero-overhead "
                "guard is broken on the TCP path"
            )
        if sockets["traced_events"] == 0:
            failures.append(
                "sockets: traced ping-pong recorded no events — transport "
                "tracing is dead"
            )
        socket_limit = max(SOCKET_TOLERANCE_PCT, sockets["noise_pct"])
        if sockets["traced_overhead_pct"] > socket_limit:
            failures.append(
                f"sockets: traced ping-pong p50 is "
                f"{sockets['traced_overhead_pct']:.2f}% over untraced "
                f"(tolerance {SOCKET_TOLERANCE_PCT:.1f}%, measured noise "
                f"{sockets['noise_pct']:.1f}%)"
            )
        sampled_limit = max(SAMPLED_TOLERANCE_PCT, sockets["noise_pct"])
        if sockets["sampled_overhead_pct"] > sampled_limit:
            failures.append(
                f"sockets: 1%-sampled ping-pong p50 is "
                f"{sockets['sampled_overhead_pct']:.2f}% over untraced "
                f"(tolerance {SAMPLED_TOLERANCE_PCT:.1f}%, measured noise "
                f"{sockets['noise_pct']:.1f}%) — the not-sampled fast path "
                "grew a real per-frame cost"
            )
        if sockets["sampled_sends_dropped"] == 0:
            failures.append(
                "sockets: the 1% sampler never dropped a send across "
                "all repeats — sampling is not reaching the transport"
            )
    sketch = results.get("sketch")
    if sketch:
        bound = sketch["relative_accuracy"] * SKETCH_ERR_MARGIN
        for dist, row in sketch["distributions"].items():
            for key, err in row.items():
                if key.endswith("_rel_err") and err > bound:
                    failures.append(
                        f"sketch: {dist} {key[:-8]} relative error {err:.4f} "
                        f"exceeds the configured bound "
                        f"{sketch['relative_accuracy']:.4f} "
                        f"(x{SKETCH_ERR_MARGIN} sampling margin)"
                    )
    tenant_agg = results.get("tenant_agg")
    if tenant_agg and tenant_agg["tenants"] < 100:
        failures.append(
            f"tenant_agg: only {tenant_agg['tenants']} tenants exercised "
            "(the aggregation contract is >=100 concurrent collaboration sets)"
        )
    return failures


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="reduced sizes (CI smoke)")
    parser.add_argument("--out", default=DEFAULT_OUT, help="output JSON path")
    parser.add_argument("--repeats", type=int, default=0, help="override repeat count")
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate the zero-overhead-when-disabled contract (exit 1 on failure)",
    )
    parser.add_argument(
        "--tolerance-pct",
        type=float,
        default=5.0,
        help="allowed baseline/disabled wall-clock divergence (default 5%%)",
    )
    parser.add_argument(
        "--no-sockets",
        action="store_true",
        help="skip the traced-vs-untraced real-socket ping-pong series",
    )
    args = parser.parse_args(argv)

    results = run(quick=args.quick, repeats=args.repeats, sockets=not args.no_sockets)
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")

    modes = results["modes"]
    for mode in ("baseline", "disabled", "enabled"):
        row = modes[mode]
        print(
            f"{mode:9s} best {row['best_s']:.3f}s  {row['commits_per_sec']:>7.1f} commits/s"
            f"  events={row['events']}"
        )
    overhead = results["overhead"]
    print(
        f"\ndisabled vs baseline: {overhead['disabled_vs_baseline_pct']:+.2f}%"
        f"   enabled vs disabled: {overhead['enabled_vs_disabled_pct']:+.2f}%"
        f"   recording cost: {overhead['recording_us_per_event']} us/event"
    )
    analysis = results["analysis"]
    print(
        f"analysis over {analysis['events']} events: "
        f"causal {analysis['analyze_us_per_event']} us/event"
        f"   health {analysis['health_us_per_event']} us/event"
    )
    sketch = results["sketch"]
    print(
        f"sketch: worst rel err {sketch['worst_rel_err']:.4f} "
        f"(bound {sketch['relative_accuracy']}), "
        f"observe {sketch['observe_ns']} ns, "
        f"16-shard merge {sketch['merge_16_shards_us']} us"
    )
    tenant_agg = results["tenant_agg"]
    print(
        f"tenant_agg: {tenant_agg['tenants']} tenants x {tenant_agg['sites']} sites, "
        f"ingest {tenant_agg['ingest_us_per_event']} us/event, "
        f"merge {tenant_agg['merge_ms']} ms"
    )
    if "sockets" in results:
        sockets = results["sockets"]
        print(
            f"sockets: untraced p50 {sockets['untraced_p50_us']} us, "
            f"traced p50 {sockets['traced_p50_us']} us "
            f"({sockets['traced_overhead_pct']:+.2f}%, "
            f"noise {sockets['noise_pct']:.2f}%), "
            f"{sockets['traced_events']} events recorded"
        )
        print(
            f"sampled (rate {sockets['sampled_rate']}): "
            f"p50 {sockets['sampled_p50_us']} us "
            f"({sockets['sampled_overhead_pct']:+.2f}% vs untraced), "
            f"{sockets['sampled_sends_dropped']} sends / "
            f"{sockets['sampled_deliveries_dropped']} deliveries sampled out"
        )
    print(f"wrote {args.out}")

    if args.check:
        failures = check(results, args.tolerance_pct)
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print(f"check passed (tolerance {args.tolerance_pct:.1f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
