"""E5 — Rollback rate for read-write transactions (section 5.2.2).

Paper: "for transactions involving both reads and writes and one party
updating once per second on the average, an update rate by a second party
of once per three seconds or more produced rollback rates below 2 percent;
at higher update rates, rollbacks were frequent enough to produce
significant rates of update inconsistencies.  This suggests that it may be
desirable to suppress optimism when conflict rates exceed a certain
threshold."

Reproduction: party A issues read-modify-write transactions at 1/s; party
B's interval sweeps from 0.5 s to 10 s.  Rollback rate = conflict aborts /
transaction attempts.  The shape: under ~2% at B >= 3 s intervals, sharply
higher as B's rate approaches A's.
"""

import pytest

from repro.bench import two_party_scenario
from repro.bench.report import Table, emit, format_table
from repro.workloads import (
    PoissonArrivals,
    ReadModifyWriteWorkload,
    WorkloadParty,
    run_workload,
)

LATENCY_MS = 25.0
TXNS_A = 120
SEEDS = (3, 4, 5)


def run_point(b_interval_s, seed=3):
    scenario = two_party_scenario(latency_ms=LATENCY_MS, seed=seed)
    duration_scale = TXNS_A  # A runs ~TXNS_A seconds of workload
    b_count = max(3, int(duration_scale / b_interval_s))
    parties = [
        WorkloadParty(
            site=scenario.alice,
            workload=ReadModifyWriteWorkload(scenario.a),
            arrivals=PoissonArrivals(1000.0),  # 1/s
            count=TXNS_A,
        ),
        WorkloadParty(
            site=scenario.bob,
            workload=ReadModifyWriteWorkload(scenario.b),
            arrivals=PoissonArrivals(b_interval_s * 1000.0),
            count=b_count,
        ),
    ]
    summary = run_workload(scenario.session, parties, seed=seed)
    issued = TXNS_A + b_count
    rollbacks = summary["counters"]["retries"]
    rate = 100.0 * rollbacks / summary["attempts"]
    # Sanity: all increments serialized exactly once.
    expected = summary["committed"]
    final = scenario.a.get()
    return rate, rollbacks, issued, final == expected


def run_experiment():
    table = Table(
        title=f"E5: read-write rollback rate (A at 1 txn/s, t = {LATENCY_MS:.0f} ms)",
        headers=["B interval (s)", "rollback rate (%)", "rollbacks", "serialized ok"],
    )
    intervals = [0.5, 1.0, 2.0, 3.0, 5.0, 10.0]
    measured = {}
    for interval in intervals:
        rates, total_rollbacks, all_ok = [], 0, True
        for seed in SEEDS:
            rate, rollbacks, _issued, ok = run_point(interval, seed=seed)
            rates.append(rate)
            total_rollbacks += rollbacks
            all_ok = all_ok and ok
        mean_rate = sum(rates) / len(rates)
        measured[interval] = (mean_rate, all_ok)
        table.add(interval, mean_rate, total_rollbacks, all_ok)
    table.note("paper: B interval >= 3 s  =>  rollback rate below 2%")
    table.note("paper: higher B rates => frequent rollbacks (suppress optimism)")
    return table, measured


def test_e5_rollbacks(benchmark):
    table, measured = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("E5_rollbacks", format_table(table))

    # Shape 1: the paper's threshold — slow second party keeps rollbacks <2%.
    assert measured[3.0][0] < 2.0
    assert measured[5.0][0] < 2.0
    assert measured[10.0][0] < 2.0
    # Shape 2: rollback rate increases as B speeds up, crossing the paper's
    # 2% threshold at fast rates.
    assert measured[0.5][0] > measured[3.0][0]
    assert measured[0.5][0] > 2.0
    # Shape 3: serialization stays correct at every contention level.
    assert all(ok for _rate, ok in measured.values())
