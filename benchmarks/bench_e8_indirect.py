"""E8 (ablation) — Indirect propagation for composites (section 3.2).

Paper: "In addition to saving space, indirect replication avoids the
problem in direct replication that small changes to the embedding structure
could end up changing a large number of objects.  For example, ... adding a
new replica A''' to the set {A, A', A''} would entail updating the
replication graph for every object embedded within A and its replicas."

Reproduction: build a composite with k embedded children, replicated at 3
sites.  Measure (a) how many replication graphs exist per site (storage),
and (b) how many graph updates a membership change implies, under the
implemented indirect scheme vs. the per-child graphs a direct scheme would
need (computed analytically from the same tree, since direct propagation
for every child is exactly "one graph per embedded object").
"""

import pytest

from repro import Session
from repro.bench.report import Table, emit, format_table
from repro import DList


def count_graphs(site) -> int:
    """Replication graphs actually materialized at a site."""
    return sum(1 for obj in site.objects.values() if obj.has_own_graph())


def count_embedded(site) -> int:
    return sum(1 for obj in site.objects.values() if obj.parent is not None)


def run_case(k_children: int):
    session = Session.simulated(latency_ms=20.0)
    sites = session.add_sites(3)
    lists = session.replicate(DList, "doc", sites)
    session.settle()

    def fill():
        for i in range(k_children):
            lists[0].append("int", i)

    sites[0].transact(fill)
    session.settle()

    graphs_per_site = count_graphs(sites[1]) - 1  # exclude the assoc object
    embedded = count_embedded(sites[1])
    # Under direct propagation, every embedded object would hold its own
    # graph, and a membership change would rewrite each of them at every
    # member site (paper's "updating the replication graph for every object
    # embedded within A and its replicas").
    direct_graphs = graphs_per_site + embedded
    indirect_membership_updates = 1  # only the root graph changes
    direct_membership_updates = 1 + embedded

    # Measure actual message cost of a child update (indirect propagation
    # carries the root uid + path, no per-child graph lookups).
    msgs_before = session.network.stats.messages_sent

    def edit():
        lists[0].child_at(0).set(999)

    sites[0].transact(edit)
    session.settle()
    child_update_msgs = session.network.stats.messages_sent - msgs_before

    return {
        "embedded": embedded,
        "indirect_graphs": graphs_per_site,
        "direct_graphs": direct_graphs,
        "indirect_membership_updates": indirect_membership_updates,
        "direct_membership_updates": direct_membership_updates,
        "child_update_msgs": child_update_msgs,
    }


def run_experiment():
    table = Table(
        title="E8: indirect vs direct propagation (3-site replicated list)",
        headers=[
            "children",
            "graphs/site indirect",
            "graphs/site direct",
            "join updates indirect",
            "join updates direct",
            "child-update msgs",
        ],
    )
    results = {}
    for k in (4, 16, 64):
        r = run_case(k)
        results[k] = r
        table.add(
            k,
            r["indirect_graphs"],
            r["direct_graphs"],
            r["indirect_membership_updates"],
            r["direct_membership_updates"],
            r["child_update_msgs"],
        )
    table.note("direct columns computed from the same tree: one graph per embedded object")
    return table, results


def test_e8_indirect(benchmark):
    table, results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("E8_indirect", format_table(table))

    for k, r in results.items():
        # Indirect: one graph per root regardless of k.
        assert r["indirect_graphs"] == 1
        assert r["embedded"] == k
        # Direct would scale with the number of embedded objects.
        assert r["direct_graphs"] == 1 + k
        assert r["direct_membership_updates"] == 1 + k
        assert r["indirect_membership_updates"] == 1
    # Child updates cost a constant number of messages regardless of k.
    msg_counts = {r["child_update_msgs"] for r in results.values()}
    assert len(msg_counts) == 1
