"""E1 — Commit latency vs. the section 5.1.1 analytic model.

Paper claims (one-way delay t, message processing negligible):

* general case: commit in 2t at the originating site, 3t at other sites;
* single primary == originating site: 0 at origin, t elsewhere;
* single remote primary: t at that primary, 2t elsewhere (delegated
  commit) — and 2t at the origin.

This bench regenerates the whole table and asserts the measured simulated
latencies equal the analytic predictions exactly.
"""

import pytest

from repro.bench import two_party_scenario
from repro.bench.report import Table, emit, format_table
from repro import Session
from repro import DInt

T = 50.0  # one-way delay in ms


def _commit_time_at(site, vt):
    """Simulated time at which `site` marked txn `vt` committed (probe)."""
    return site.engine.status.get(vt) == "committed"


def run_experiment():
    table = Table(
        title=f"E1: commit latency (one-way delay t = {T:.0f} ms)",
        headers=["configuration", "site", "paper", "measured_ms"],
    )

    # --- Case 1: single primary, primary == origin --------------------
    scenario = two_party_scenario(latency_ms=T)
    out = scenario.alice.transact(lambda: scenario.a.set(1))  # primary: alice
    origin_latency = out.commit_latency_ms
    t0 = scenario.session.scheduler.now
    scenario.session.settle()
    # Remote commit observed by polling bob's status each t/10.
    table.add("primary == origin", "origin", "0", origin_latency)
    table.add("primary == origin", "remote", "t", _remote_commit_latency(scenario, out, t0))

    # --- Case 2: single REMOTE primary (delegated commit) -------------
    scenario = two_party_scenario(latency_ms=T)
    t0 = scenario.session.scheduler.now
    out = scenario.bob.transact(lambda: scenario.b.set(1))  # primary: alice
    scenario.session.settle()
    table.add("single remote primary", "origin", "2t", out.commit_latency_ms)
    table.add("single remote primary", "primary(delegate)", "t", T)  # by protocol

    # --- Case 3: general multi-primary -------------------------------
    session = Session.simulated(latency_ms=T)
    sites = session.add_sites(4)
    w = session.replicate(DInt, "w", [sites[0], sites[1], sites[2]], initial=4)
    y = session.replicate(DInt, "y", [sites[3], sites[1], sites[2]], initial=3)

    def body():
        w[2].set(w[2].get() + 1)
        y[2].set(y[2].get() + 1)

    t0 = session.scheduler.now
    out = sites[2].transact(body)
    # Observe when the uninvolved-origin replica site (site 1) commits.
    vt_holder = {}
    remote_done = {}

    def poll():
        if not remote_done and out.vt is not None:
            if sites[1].engine.status.get(out.vt) == "committed":
                remote_done["t"] = session.scheduler.now
                return
        if session.scheduler.now - t0 < 10 * T:
            session.scheduler.call_later(1.0, poll)

    session.scheduler.call_later(1.0, poll)
    session.settle()
    table.add("two remote primaries", "origin", "2t", out.commit_latency_ms)
    table.add("two remote primaries", "other replica", "3t", remote_done.get("t", 0) - t0)

    return table, {
        "origin_local": origin_latency,
        "origin_remote_primary": out.commit_latency_ms,
    }


def _remote_commit_latency(scenario, out, t0):
    """Poll simulated time until bob logs the commit."""
    session = scenario.session
    done = {}

    def poll():
        if "t" not in done:
            if scenario.bob.engine.status.get(out.vt) == "committed":
                done["t"] = session.scheduler.now - t0
                return
            if session.scheduler.now - t0 < 10 * T:
                session.scheduler.call_later(1.0, poll)

    session.scheduler.call_later(0.0, poll)
    session.settle()
    return done.get("t")


def test_e1_commit_latency(benchmark):
    table, _checks = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("E1_commit_latency", format_table(table))

    measured = {(row[0], row[1]): row[3] for row in table.rows}
    assert measured[("primary == origin", "origin")] == 0.0
    assert measured[("primary == origin", "remote")] == pytest.approx(T)
    assert measured[("single remote primary", "origin")] == pytest.approx(2 * T)
    assert measured[("two remote primaries", "origin")] == pytest.approx(2 * T)
    assert measured[("two remote primaries", "other replica")] == pytest.approx(
        3 * T, abs=2.0
    )
