"""E7 (ablation) — The delegated-commit optimization (section 3.1).

Paper: with a single remote primary site and no RC guesses, "rather than
waiting for the single primary site to send a confirmation back to the
originating site (which would then send a summary commit), the originating
site 'delegates' the responsibility for committing the whole transaction to
the single remote primary site."

We measure messages per transaction and commit latency at every site with
the optimization on vs. off, in two-party and three-party collaborations.
"""

import pytest

from repro import Session
from repro.bench.report import Table, emit, format_table
from repro import DInt

T = 50.0


def run_case(n_sites: int, delegation: bool):
    session = Session.simulated(latency_ms=T, delegation_enabled=delegation)
    sites = session.add_sites(n_sites)
    objs = session.replicate(DInt, "x", sites, initial=0)
    session.settle()
    msgs_before = session.network.stats.messages_sent
    t0 = session.scheduler.now
    origin = sites[-1]  # remote from the primary (site 0)
    out = origin.transact(lambda: objs[-1].set(1))
    # Track when every site has logged the commit.
    commit_times = {}

    def poll():
        for i, site in enumerate(sites):
            if i not in commit_times and site.engine.status.get(out.vt) == "committed":
                commit_times[i] = session.scheduler.now - t0
        if len(commit_times) < n_sites and session.scheduler.now - t0 < 20 * T:
            session.scheduler.call_later(1.0, poll)

    session.scheduler.call_later(0.0, poll)
    session.settle()
    messages = session.network.stats.messages_sent - msgs_before
    return {
        "messages": messages,
        "origin_commit": out.commit_latency_ms,
        "max_commit": max(commit_times.values()),
    }


def run_experiment():
    table = Table(
        title=f"E7: delegated commit ablation (t = {T:.0f} ms, origin remote from primary)",
        headers=["parties", "delegation", "msgs/txn", "commit@origin", "max commit anywhere"],
    )
    results = {}
    for n in (2, 3, 4):
        for delegation in (True, False):
            r = run_case(n, delegation)
            results[(n, delegation)] = r
            table.add(
                n,
                "on" if delegation else "off",
                r["messages"],
                r["origin_commit"],
                r["max_commit"],
            )
    table.note("delegation saves the confirm hop's message on the commit path")
    return table, results


def test_e7_delegation(benchmark):
    table, results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("E7_delegation", format_table(table))

    for n in (2, 3, 4):
        on, off = results[(n, True)], results[(n, False)]
        # Fewer messages with delegation.
        assert on["messages"] < off["messages"]
        # Never slower at the origin; and the system-wide commit wave
        # completes at least as fast.
        assert on["origin_commit"] <= off["origin_commit"]
        assert on["max_commit"] <= off["max_commit"]
    # Two-party case: the delegate commits at t, origin at 2t either way.
    assert results[(2, True)]["origin_commit"] == pytest.approx(2 * T)
