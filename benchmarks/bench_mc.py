"""Model-checker benchmark: exhaustive enumeration cost and POR leverage.

Measures the bounded-exhaustive scheduler (``repro.explore.mc``) on the
standard small configs:

* ``replays_per_s`` — stateless executions per second (each DFS node costs
  one full trial replay from config; this is the unit cost of everything),
* per config: full vs POR schedule counts, the reduction ratio, and the
  wall-clock to exhaust each space,
* ``canary_s`` — time for the exhaustive canary check to *find* each
  protocol mutation (stop-on-violation), the latency a CI gate pays.

The committed ``BENCH_mc.json`` feeds ``scripts/bench_trajectory.py``
(auto-globbed as area ``mc``), so schedule-count drift — a protocol change
that silently grows or shrinks the reachable interleaving space — and
replay-throughput regressions both show up in the per-commit trajectory.

Usage::

    PYTHONPATH=src python benchmarks/bench_mc.py            # full run
    PYTHONPATH=src python benchmarks/bench_mc.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict

if __name__ == "__main__":  # allow running straight from a checkout
    _root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    _src = os.path.join(_root, "src")
    if _src not in sys.path:
        sys.path.insert(0, _src)

from repro.explore.mc import canary_config, explore
from repro.explore.plan import exhaustive_config
from repro.sim.choice import ScheduleController

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_mc.json")

#: (name, n_sites, txns, views, enumerate_full).  The quick set stops
#: before the minute-scale entries; the 3-site unreduced space exceeds
#: 20k schedules, so only its POR run is ever enumerated.
CONFIGS = [
    ("2s_2rmw", 2, [(0, "rmw"), (1, "rmw")], False, True),
    ("2s_3txn", 2, [(0, "rmw"), (1, "rmw"), (0, "blind")], False, True),
    ("2s_2rmw_views", 2, [(0, "rmw"), (1, "rmw")], True, True),
]
CONFIGS_FULL = CONFIGS + [
    ("3s_2rmw", 3, [(0, "rmw"), (1, "rmw")], False, False),
]


def bench_replay_throughput(repeats: int) -> Dict[str, Any]:
    """Unit cost: one controlled trial replay from config (DFS node cost)."""
    from repro.explore.trial import run_trial

    config = exhaustive_config(2, [(0, "rmw"), (1, "rmw")], views=False)

    class FirstChoice:
        def choose(self, depth, enabled):
            return enabled[0]

    start = time.perf_counter()
    for _ in range(repeats):
        run_trial(config, controller=ScheduleController(FirstChoice()))
    elapsed = time.perf_counter() - start
    return {
        "repeats": repeats,
        "replays_per_s": round(repeats / elapsed, 1),
        "ms_per_replay": round(1000.0 * elapsed / repeats, 3),
    }


def bench_config(name, n_sites, txns, views, do_full: bool) -> Dict[str, Any]:
    config = exhaustive_config(n_sites, txns, views=views)
    t0 = time.perf_counter()
    reduced = explore(config, por=True)
    por_s = time.perf_counter() - t0
    row: Dict[str, Any] = {
        "por_schedules": reduced.stats.schedules,
        "por_pruned": reduced.stats.pruned,
        "por_s": round(por_s, 3),
        "distinct_outcomes": reduced.stats.distinct_outcomes,
        "max_depth": reduced.stats.max_depth,
    }
    if do_full:
        t0 = time.perf_counter()
        full = explore(config, por=False)
        row["full_schedules"] = full.stats.schedules
        row["full_s"] = round(time.perf_counter() - t0, 3)
        row["por_ratio"] = round(reduced.stats.schedules / full.stats.schedules, 4)
    return row


def bench_canaries() -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for mutation in ("skip_rl_check", "views_pre_commit", "skip_nc_check"):
        t0 = time.perf_counter()
        result = explore(canary_config(mutation), por=True, stop_on_violation=True)
        out[mutation] = {
            "caught": not result.ok,
            "schedules_to_find": result.stats.schedules,
            "canary_s": round(time.perf_counter() - t0, 3),
        }
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="reduced sizes (CI smoke)")
    parser.add_argument("--out", default=DEFAULT_OUT, help="output JSON path")
    args = parser.parse_args(argv)

    configs = CONFIGS if args.quick else CONFIGS_FULL
    results: Dict[str, Any] = {
        "schema": "bench_mc/v1",
        "quick": args.quick,
        "replay": bench_replay_throughput(40 if args.quick else 200),
        "configs": {},
    }
    for name, n_sites, txns, views, enumerate_full in configs:
        # Full enumeration of the viewed 2-site config is ~4.4k schedules
        # (~30 s): measured in the full run, skipped in --quick.
        do_full = enumerate_full and not (args.quick and views)
        results["configs"][name] = bench_config(name, n_sites, txns, views, do_full)
        print(f"{name}: {json.dumps(results['configs'][name])}")
    if not args.quick:
        results["canaries"] = bench_canaries()
        print(f"canaries: {json.dumps(results['canaries'])}")

    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")
    print(f"results written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
