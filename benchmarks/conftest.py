"""Shared fixtures for the benchmark suite.

Every benchmark runs a deterministic discrete-event simulation, so latency
numbers are exact (noise-free); pytest-benchmark's timing then reports the
*harness* cost of regenerating each result, while the experiment's actual
measurements (simulated-time latencies, rates) are printed as paper-style
tables and persisted under ``benchmarks/results/``.
"""

import pytest
