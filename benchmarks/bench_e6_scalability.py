"""E6 — Scalability: per-set primaries vs. a network-wide GVT sweep.

Paper (section 5.1.3): "In a hypothetical example of a very large network
with large numbers of relatively small replica sets (e.g., replicas at
sites A, B, and C, at sites C, D, and E, at E, F, and G, etc.) the sweep to
compute a GVT can be very time-consuming, since it is proportional to the
size of the network.  But in our algorithm, each replica set will have its
own primary site, and each transaction will require confirmations from a
very small number of such primary sites."

Reproduction: build the paper's chain of overlapping 3-site replica sets
over N total sites.  Measure the commit latency of one transaction on the
*last* set under (a) DECAF (per-set primary) and (b) the GVT token-sweep
baseline where the token must traverse all N sites.  Expected shape: DECAF
flat in N; GVT linear in N.
"""

import pytest

from repro import Session
from repro.baselines import GvtSystem
from repro.bench.report import Table, emit, format_table
from repro import DInt

T = 20.0  # one-way delay (ms)
SIZES = [3, 5, 9, 17, 33]


def decaf_chain_latency(n_sites: int) -> float:
    """Chain of 3-site replica sets: sites (0,1,2), (2,3,4), (4,5,6), ...

    A transaction at the last site of the last set updates that set's
    object; commit needs confirmation from that set's primary only.
    """
    session = Session.simulated(latency_ms=T)
    sites = session.add_sites(n_sites)
    sets = []
    start = 0
    while start + 2 < n_sites:
        sets.append([sites[start], sites[start + 1], sites[start + 2]])
        start += 2
    if not sets:
        sets = [sites]
    objects = []
    for i, member_sites in enumerate(sets):
        objects.append(session.replicate(DInt, f"set{i}", member_sites, initial=0))
    session.settle()
    last_set_objs = objects[-1]
    origin_site = sets[-1][-1]
    out = origin_site.transact(lambda: last_set_objs[-1].set(1))
    session.settle()
    assert out.committed
    return out.commit_latency_ms


def gvt_chain_latency(n_sites: int) -> float:
    """Same update under the GVT baseline: the token sweeps all N sites."""
    system = GvtSystem(n_sites=n_sites, latency_ms=T)
    system.run_for(4 * n_sites * T)  # let the token reach steady circulation
    probe = system.issue_update(n_sites - 1, 1)
    system.run_for(10 * n_sites * T + 1000)
    latency = probe.commit_latency_at(n_sites - 1)
    assert latency is not None
    return latency


def run_experiment():
    table = Table(
        title=f"E6: commit latency vs network size (chained 3-site replica sets, t = {T:.0f} ms)",
        headers=["N sites", "DECAF (ms)", "GVT sweep (ms)", "GVT/DECAF"],
    )
    decaf, gvt = {}, {}
    for n in SIZES:
        decaf[n] = decaf_chain_latency(n)
        gvt[n] = gvt_chain_latency(n)
        table.add(n, decaf[n], gvt[n], gvt[n] / max(decaf[n], 1e-9))
    table.note("paper: GVT sweep cost proportional to network size; DECAF flat")
    return table, decaf, gvt


def test_e6_scalability(benchmark):
    table, decaf, gvt = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("E6_scalability", format_table(table))

    # Shape 1: DECAF's commit latency does not grow with the network.
    assert decaf[SIZES[-1]] == decaf[SIZES[0]]
    assert decaf[SIZES[-1]] <= 2 * T
    # Shape 2: the GVT baseline grows (roughly linearly) with N.
    assert gvt[33] > gvt[9] > gvt[3]
    assert gvt[33] >= 2.0 * gvt[9] * 33 / 9 * 0.3  # clearly super-constant
    # Shape 3: at N=33 the gap is at least an order of magnitude.
    assert gvt[33] / decaf[33] >= 10.0
