"""Hot-path microbenchmarks: seed (naive) vs indexed implementations.

Times the four protocol hot paths — history reads/inserts, reservation
checks, scheduler churn — against the seed's naive linear implementations
(preserved verbatim in :mod:`repro.bench.reference`), plus an end-to-end
E6-style commit-throughput run, and writes the numbers to
``BENCH_hotpaths.json`` at the repo root so successive PRs accumulate a
perf trajectory.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpaths.py           # full run
    PYTHONPATH=src python benchmarks/bench_hotpaths.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_hotpaths.py --out /tmp/b.json

Every workload is deterministic (seeded PRNG), so the *operation counts*
are reproducible; the wall-clock timings vary with the machine, which is
why the JSON records both sides of every comparison rather than absolute
thresholds.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from typing import Callable, Dict, List

if __name__ == "__main__":  # allow running straight from a checkout
    _root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    _src = os.path.join(_root, "src")
    if _src not in sys.path:
        sys.path.insert(0, _src)

from repro import Session
from repro.bench.reference import NaiveIntervalSet, NaiveScheduler, NaiveValueHistory
from repro.core.history import ValueHistory
from repro.sim.scheduler import Scheduler
from repro.vtime import VirtualTime
from repro.vtime.intervals import IntervalSet
from repro import DInt

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_hotpaths.json")

FULL = {
    "read_sizes": [100, 1_000, 10_000, 100_000],
    "insert_sizes": [100, 1_000, 5_000],
    "reservation_sizes": [100, 1_000, 10_000],
    "scheduler_sizes": [1_000, 10_000, 50_000],
    "e2e_transactions": 300,
}
QUICK = {
    "read_sizes": [100, 1_000],
    "insert_sizes": [100, 1_000],
    "reservation_sizes": [100, 1_000],
    "scheduler_sizes": [1_000, 5_000],
    "e2e_transactions": 30,
}


def _timeit(fn: Callable[[], object]) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _compare(seed_s: float, indexed_s: float, ops: int) -> Dict[str, float]:
    return {
        "ops": ops,
        "seed_s": round(seed_s, 6),
        "indexed_s": round(indexed_s, 6),
        "seed_us_per_op": round(seed_s / ops * 1e6, 3),
        "indexed_us_per_op": round(indexed_s / ops * 1e6, 3),
        "speedup": round(seed_s / indexed_s, 2) if indexed_s > 0 else float("inf"),
    }


# ---------------------------------------------------------------------------
# History
# ---------------------------------------------------------------------------


def _build_histories(n: int):
    naive, indexed = NaiveValueHistory(0), ValueHistory(0)
    for i in range(1, n + 1):
        vt = VirtualTime(i, 0)
        naive.insert(vt, i, committed=True)
        indexed.insert(vt, i, committed=True)
    return naive, indexed


def bench_history_read_at(sizes: List[int]) -> Dict[str, Dict[str, float]]:
    out: Dict[str, Dict[str, float]] = {}
    for n in sizes:
        naive, indexed = _build_histories(n)
        rng = random.Random(1234)
        probes = [
            VirtualTime(rng.randint(1, n), 99)
            for _ in range(min(2_000, max(100, 2_000_000 // n)))
        ]
        seed_s = _timeit(lambda: [naive.read_at(p) for p in probes])
        indexed_s = _timeit(lambda: [indexed.read_at(p) for p in probes])
        # Sanity: both sides must agree before the timing means anything.
        for p in probes[:20]:
            assert naive.read_at(p).value == indexed.read_at(p).value
        out[str(n)] = _compare(seed_s, indexed_s, len(probes))
    return out


def bench_history_insert(sizes: List[int]) -> Dict[str, Dict[str, float]]:
    out: Dict[str, Dict[str, float]] = {}
    for n in sizes:
        order = list(range(1, n + 1))
        random.Random(99).shuffle(order)
        vts = [VirtualTime(c, 0) for c in order]

        def build(cls):
            h = cls(0)
            for vt in vts:
                h.insert(vt, 1, committed=True)
            return h

        seed_s = _timeit(lambda: build(NaiveValueHistory))
        indexed_s = _timeit(lambda: build(ValueHistory))
        out[str(n)] = _compare(seed_s, indexed_s, n)
    return out


# ---------------------------------------------------------------------------
# Reservations
# ---------------------------------------------------------------------------


def bench_blocking_reservation(sizes: List[int]) -> Dict[str, Dict[str, float]]:
    """NC checks against a backlog of live reservations.

    Reservations are short ``(t_read, t_txn)`` spans accumulated over
    virtual time; NC probes arrive at *recent* VTs, which is exactly the
    case the hi-sorted bisect index prunes.
    """
    out: Dict[str, Dict[str, float]] = {}
    for n in sizes:
        naive, indexed = NaiveIntervalSet(), IntervalSet()
        for i in range(1, n + 1):
            lo, hi, owner = VirtualTime(i, 0), VirtualTime(i + 3, 0), VirtualTime(i + 3, 1)
            naive.reserve(lo, hi, owner)
            indexed.reserve(lo, hi, owner)
        rng = random.Random(4321)
        probes = [
            VirtualTime(n - rng.randint(0, 10), 99)
            for _ in range(min(2_000, max(200, 2_000_000 // n)))
        ]
        seed_s = _timeit(lambda: [naive.blocking_reservation(p) for p in probes])
        indexed_s = _timeit(lambda: [indexed.blocking_reservation(p) for p in probes])
        for p in probes[:20]:
            assert naive.blocking_reservation(p) == indexed.blocking_reservation(p)
        out[str(n)] = _compare(seed_s, indexed_s, len(probes))
    return out


# ---------------------------------------------------------------------------
# Scheduler
# ---------------------------------------------------------------------------


def _noop() -> None:
    pass


def _scheduler_churn(cls, n: int, pending_every: int = 25) -> int:
    """Schedule ``n`` events, cancel ~90%, poll pending(), then drain."""
    sched = cls()
    rng = random.Random(42)
    checksum = 0
    for i in range(n):
        event = sched.call_later(rng.random() * 1_000.0, _noop)
        if rng.random() < 0.9:
            event.cancel()
        if i % pending_every == 0:
            checksum += sched.pending()
    sched.run_until_quiescent()
    return checksum


def bench_scheduler_churn(sizes: List[int]) -> Dict[str, Dict[str, float]]:
    out: Dict[str, Dict[str, float]] = {}
    for n in sizes:
        naive_checksum = indexed_checksum = 0

        def run_naive():
            nonlocal naive_checksum
            naive_checksum = _scheduler_churn(NaiveScheduler, n)

        def run_indexed():
            nonlocal indexed_checksum
            indexed_checksum = _scheduler_churn(Scheduler, n)

        seed_s = _timeit(run_naive)
        indexed_s = _timeit(run_indexed)
        assert naive_checksum == indexed_checksum, "pending() counts diverged"
        out[str(n)] = _compare(seed_s, indexed_s, n)
    return out


# ---------------------------------------------------------------------------
# End-to-end commit throughput (E6-style, current implementation only)
# ---------------------------------------------------------------------------


def bench_commit_throughput(transactions: int) -> Dict[str, float]:
    """Wall-clock throughput of sequential committed transactions on a
    3-site replica set — the perf-trajectory headline for future PRs."""
    session = Session.simulated(latency_ms=20.0)
    sites = session.add_sites(3)
    objs = session.replicate(DInt, "counter", sites, initial=0)
    session.settle()
    start = time.perf_counter()
    for i in range(transactions):
        out = sites[0].transact(lambda i=i: objs[0].set(i + 1))
        session.settle()
        assert out.committed
    wall_s = time.perf_counter() - start
    return {
        "transactions": transactions,
        "wall_s": round(wall_s, 6),
        "commits_per_sec": round(transactions / wall_s, 1),
    }


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def run(quick: bool = False) -> Dict[str, object]:
    cfg = QUICK if quick else FULL
    results: Dict[str, object] = {
        "schema": "bench_hotpaths/v1",
        "mode": "quick" if quick else "full",
        "python": sys.version.split()[0],
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "history_read_at": bench_history_read_at(cfg["read_sizes"]),
        "history_insert": bench_history_insert(cfg["insert_sizes"]),
        "blocking_reservation": bench_blocking_reservation(cfg["reservation_sizes"]),
        "scheduler_churn": bench_scheduler_churn(cfg["scheduler_sizes"]),
        "end_to_end_commit": bench_commit_throughput(cfg["e2e_transactions"]),
    }
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="reduced sizes (CI smoke)")
    parser.add_argument("--out", default=DEFAULT_OUT, help="output JSON path")
    args = parser.parse_args(argv)

    results = run(quick=args.quick)
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")

    for section in ("history_read_at", "history_insert", "blocking_reservation", "scheduler_churn"):
        print(f"\n{section}")
        for size, row in results[section].items():
            print(
                f"  n={size:>7}  seed {row['seed_us_per_op']:>10.3f} us/op"
                f"  indexed {row['indexed_us_per_op']:>10.3f} us/op"
                f"  speedup {row['speedup']:>8.2f}x"
            )
    e2e = results["end_to_end_commit"]
    print(
        f"\nend_to_end_commit: {e2e['transactions']} txns in {e2e['wall_s']:.3f}s"
        f" = {e2e['commits_per_sec']:.1f} commits/s"
    )
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
