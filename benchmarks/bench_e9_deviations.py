"""E9 — The optimistic-view deviation taxonomy (section 5.1.2).

The paper defines three deviations from the ideal one-notification-per-
committed-transaction sequence:

1. *lost updates* — a straggler older than an already processed update
   yields no notification;
2. *update inconsistencies* — an update delivered to a view whose
   transaction later rolls back;
3. *read inconsistencies* — a view over M1 and M2 sees M1's update, then
   M2's update arrives with an earlier VT.

And: "In an application in which all operations are blind writes, there are
no update inconsistencies, because concurrency control tests never fail.
However, lost updates and read inconsistencies may still occur."

We count all three per workload type across update rates.
"""

import pytest

from repro import Session
from repro.bench import attach_probe
from repro.bench.report import Table, emit, format_table
from repro import DInt
from repro.workloads import (
    BlindWriteWorkload,
    PoissonArrivals,
    ReadModifyWriteWorkload,
    WorkloadParty,
    run_workload,
)

LATENCY_MS = 100.0
COUNT = 80


def build(seed):
    session = Session.simulated(latency_ms=LATENCY_MS, seed=seed)
    alice, bob = session.add_sites(2)
    m1 = session.replicate(DInt, "m1", [alice, bob], initial=0)
    m2 = session.replicate(DInt, "m2", [alice, bob], initial=0)
    session.settle()
    probe_a = attach_probe(alice, [m1[0], m2[0]], "optimistic")
    probe_b = attach_probe(bob, [m1[1], m2[1]], "optimistic")
    return session, (alice, bob), (m1, m2), (probe_a, probe_b)


class AlternatingWorkload:
    """Each call targets the next of the party's objects (round robin), so
    both parties touch both shared objects: same-object stragglers (lost
    updates), cross-object stragglers (read inconsistencies), and — for
    read-modify-write — genuine conflicts (update inconsistencies) all
    occur."""

    def __init__(self, objects, kind, party_tag):
        self.objects = list(objects)
        self.kind = kind
        self.party_tag = party_tag
        self._n = 0

    def __call__(self):
        self._n += 1
        obj = self.objects[self._n % len(self.objects)]
        if self.kind == "blind":
            value = self.party_tag * 1_000_000 + self._n

            def body():
                obj.set(value)

        else:

            def body():
                obj.set(obj.get() + 1)

        return body


def run_point(workload_kind, interval_ms, seed=5):
    session, sites, objs, probes = build(seed)
    alice, bob = sites
    m1, m2 = objs
    wl_a = AlternatingWorkload([m1[0], m2[0]], workload_kind, party_tag=1)
    wl_b = AlternatingWorkload([m1[1], m2[1]], workload_kind, party_tag=2)
    parties = [
        WorkloadParty(site=alice, workload=wl_a, arrivals=PoissonArrivals(interval_ms), count=COUNT),
        WorkloadParty(site=bob, workload=wl_b, arrivals=PoissonArrivals(interval_ms), count=COUNT),
    ]
    run_workload(session, parties, seed=seed)
    totals = {"lost_updates": 0, "update_inconsistencies": 0, "read_inconsistencies": 0}
    for probe in probes:
        proxy = probe.proxy
        totals["lost_updates"] += proxy.lost_updates
        totals["update_inconsistencies"] += proxy.update_inconsistencies
        totals["read_inconsistencies"] += proxy.read_inconsistencies
    return totals


def run_experiment():
    table = Table(
        title=f"E9: optimistic-view deviations (t = {LATENCY_MS:.0f} ms, {COUNT} txns/party)",
        headers=["workload", "rate (1/s)", "lost", "update-inconsistent", "read-inconsistent"],
    )
    results = {}
    for kind in ("blind", "rmw"):
        for rate in (0.5, 2.0, 5.0):
            totals = run_point(kind, 1000.0 / rate)
            results[(kind, rate)] = totals
            table.add(
                kind,
                rate,
                totals["lost_updates"],
                totals["update_inconsistencies"],
                totals["read_inconsistencies"],
            )
    table.note("paper: all-blind-write workloads have NO update inconsistencies")
    return table, results


def test_e9_deviations(benchmark):
    table, results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("E9_deviations", format_table(table))

    # Paper's categorical claim: blind writes never produce update
    # inconsistencies (concurrency tests never fail)...
    for rate in (0.5, 2.0, 5.0):
        assert results[("blind", rate)]["update_inconsistencies"] == 0
    # ...but lost updates and read inconsistencies may still occur.
    busy_blind = results[("blind", 5.0)]
    assert busy_blind["lost_updates"] + busy_blind["read_inconsistencies"] > 0
    # Read-modify-write workloads do roll back under load.
    assert results[("rmw", 5.0)]["update_inconsistencies"] > 0
    # Deviations grow with rate within each workload.
    assert (
        results[("blind", 5.0)]["lost_updates"]
        >= results[("blind", 0.5)]["lost_updates"]
    )
