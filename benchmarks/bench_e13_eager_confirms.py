"""E13 (extension) — "Faster commit of snapshots" (sections 5.1.2 / 5.3).

The paper's latency analysis assumes that "for objects that are updated in
the transaction, confirmations are eagerly distributed by the primary copy
when the originating site requests confirmation".  We implement that
optimization (``eager_view_confirms``) and measure its effect: a
*third-party* site (neither origin nor primary) sees pessimistic update
notifications at 2t instead of 3t for read-modify-write transactions, at
the cost of one extra broadcast per confirmed write.
"""

import pytest

from repro import Session, View
from repro.bench.report import Table, emit, format_table
from repro import DInt

T = 50.0


class Probe(View):
    def __init__(self, site):
        self.site = site
        self.seen = {}

    def update(self, changed, snapshot):
        for obj in changed:
            value = snapshot.read(obj)
            self.seen.setdefault(value, self.site.transport.now())


def run_case(eager: bool):
    session = Session.simulated(latency_ms=T, eager_view_confirms=eager)
    sites = session.add_sites(3)
    objs = session.replicate(DInt, "x", sites, initial=0)
    session.settle()
    probe = Probe(sites[1])  # third party: origin is 2, primary is 0
    objs[1].attach(probe, "pessimistic")
    base_msgs = session.network.stats.messages_sent
    t0 = session.scheduler.now
    sites[2].transact(lambda: objs[2].set(objs[2].get() + 41))
    session.settle()
    return {
        "latency": probe.seen[41] - t0,
        "messages": session.network.stats.messages_sent - base_msgs,
    }


def run_experiment():
    table = Table(
        title=f"E13: eager confirmation distribution (t = {T:.0f} ms, 3 sites, RMW txn)",
        headers=["eager confirms", "pess. view @ 3rd site", "paper", "msgs/txn"],
    )
    results = {}
    for eager in (False, True):
        r = run_case(eager)
        results[eager] = r
        table.add("on" if eager else "off", r["latency"], "2t" if eager else "3t", r["messages"])
    table.note("the 5.1.2 analysis assumes this optimization; 5.3 lists it as forthcoming")
    return table, results


def test_e13_eager_confirms(benchmark):
    table, results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("E13_eager_confirms", format_table(table))

    assert results[False]["latency"] == pytest.approx(3 * T)
    assert results[True]["latency"] == pytest.approx(2 * T)
    assert results[True]["messages"] > results[False]["messages"]
