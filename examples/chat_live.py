#!/usr/bin/env python3
"""Live multi-user chat over the asyncio transport (real wall-clock time).

The other examples run on the deterministic discrete-event simulator; this
one drives the same DECAF stack over :class:`AsyncioTransport` with a real
60 ms injected delay, demonstrating that the framework is transport-
agnostic.  Three users exchange messages; optimistic views render
transcripts immediately, and replicas converge.

Run:  python examples/chat_live.py
"""

import asyncio
import time

from repro import Session
from repro.apps import ChatRoom
from repro.transport import AsyncioTransport


async def main():
    print("== DECAF live chat (asyncio transport, 60 ms real delay) ==\n")
    transport = AsyncioTransport(delay_ms=60.0)
    session = Session(transport=transport)
    alice, bob, carol = session.add_sites(3, prefix="user")
    await transport.start()

    # Establish the shared log with the real join protocol.
    log_a = alice.create_list("chatlog")
    assoc = alice.create_association("chat.assoc")
    alice.transact(lambda: assoc.create_relationship("chat.rel"))
    await transport.aquiesce()
    alice.join(assoc, "chat.rel", log_a)
    await transport.aquiesce()
    invitation = assoc.make_invitation(note="team chat")
    rooms = [ChatRoom(alice, log_a, author="alice")]
    for site, author in ((bob, "bob"), (carol, "carol")):
        local_assoc = site.import_invitation(invitation, "chat.assoc")
        await transport.aquiesce()
        local_log = site.create_list("chatlog")
        site.join(local_assoc, "chat.rel", local_log)
        await transport.aquiesce()
        rooms.append(ChatRoom(site, local_log, author=author))

    script = [
        (0, "hello everyone!"),
        (1, "hi alice"),
        (2, "working on the DECAF reproduction"),
        (0, "optimistic views feel instant"),
        (1, "and the transcripts converge"),
    ]
    t0 = time.monotonic()
    for sender, text in script:
        rooms[sender].send(text)
        await asyncio.sleep(0.02)  # users type fast, sometimes overlapping
    await transport.aquiesce(settle_ms=200)
    elapsed = (time.monotonic() - t0) * 1000

    print(f"-- transcripts after {elapsed:.0f} ms of real time --")
    for room in rooms:
        print(f"   {room.author}'s view ({room.view.notifications} notifications):")
        for line in room.transcript():
            print(f"      {line}")
    assert rooms[0].transcript() == rooms[1].transcript() == rooms[2].transcript()
    assert len(rooms[0].transcript()) == len(script)
    await transport.stop()
    print("\nOK: identical transcripts on every site over a live transport.")


if __name__ == "__main__":
    asyncio.run(main())
