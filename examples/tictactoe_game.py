#!/usr/bin/env python3
"""Simple games over DECAF: tic-tac-toe with transactional integrity.

Section 5.2.1 lists "simple games" among the applications built on the
original prototype.  Game moves are read-modify-write transactions — they
read whose turn it is and the target cell, then write both — so racing
players cannot both take the same turn or the same square: the optimistic
protocol serializes the moves and the loser's re-executed transaction sees
the rules violation and aborts cleanly.

Run:  python examples/tictactoe_game.py
"""

from repro import Session
from repro.apps import TicTacToe
from repro import DMap, DString


def main():
    print("== DECAF tic-tac-toe ==\n")
    session = Session.simulated(latency_ms=60.0)
    px, po = session.add_sites(2, prefix="player")
    boards = session.replicate(DMap, "board", [px, po])
    turns = session.replicate(DString, "turn", [px, po], initial="X")
    session.settle()
    x = TicTacToe(px, boards[0], turns[0], "X")
    o = TicTacToe(po, boards[1], turns[1], "O")

    print("-- both players move at the same instant (X's turn) --")
    tx = x.move(4)
    to = o.move(0)  # optimistically legal on O's stale replica!
    session.settle()
    print(f"   X -> cell 4: committed={tx.outcome.committed}")
    print(f"   O -> cell 0: committed={to.outcome.committed}"
          + (f"  (rejected: {to.rejection})" if to.rejection else "  (legal after X's move serialized first)"))
    assert x.cells() == o.cells()

    print("\n-- the game proceeds --")
    script = [(o, 0), (x, 1), (o, 8), (x, 7)]
    for game, cell in script:
        if cell in game.cells():
            continue
        txn = game.move(cell)
        session.settle()
        status = "ok" if txn.outcome.committed else f"rejected ({txn.rejection})"
        print(f"   {game.mark} -> cell {cell}: {status}")

    print("\n-- final board (identical on both sites) --")
    for line in x.render().splitlines():
        print(f"   {line}")
    assert x.cells() == o.cells()
    winner = x.winner()
    print(f"\n   winner so far: {winner or 'none yet'}")
    print("\nOK: turn order and cell ownership enforced transactionally.")


if __name__ == "__main__":
    main()
