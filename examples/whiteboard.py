#!/usr/bin/env python3
"""Shared whiteboard: blind writes, zero conflicts, late joiners.

Three users draw simultaneously on a replicated whiteboard.  Because every
operation is a blind write, "concurrency control tests never fail"
(paper section 5.1.2) — no transaction ever aborts, and all canvases
converge.  A fourth user then joins the live session through an invitation
and receives the full canvas state.

Run:  python examples/whiteboard.py
"""

from repro import Session
from repro.apps import Whiteboard
from repro import DMap


def main():
    print("== DECAF shared whiteboard ==\n")
    session = Session.simulated(latency_ms=30.0, seed=7)
    ann, ben, col = session.add_sites(3, prefix="artist")
    boards_objs = session.replicate(DMap, "board", [ann, ben, col])
    boards = [Whiteboard(site, obj) for site, obj in zip((ann, ben, col), boards_objs)]
    conflicts_before = session.counters()["aborts_conflict"]

    print("-- three artists draw at the same instant (no coordination) --")
    boards[0].draw("circle", 10, 10, color="red", shape_id="sun")
    boards[1].draw("rect", 50, 80, color="blue", shape_id="house")
    boards[2].draw("line", 0, 99, color="green", shape_id="ground")
    session.settle()

    for site, board in zip((ann, ben, col), boards):
        shapes = board.shapes()
        print(f"   {site.name}: {len(shapes)} shapes -> {sorted(shapes)}")
    assert boards[0].shapes() == boards[1].shapes() == boards[2].shapes()

    print("\n-- two artists move the SAME shape concurrently (last VT wins) --")
    boards[0].move("sun", 15, 12)
    boards[1].move("sun", 90, 90)
    session.settle()
    final_sun = boards[2].shapes()["sun"]
    print(f"   converged sun position: ({final_sun['x']}, {final_sun['y']})")
    assert boards[0].shapes() == boards[1].shapes() == boards[2].shapes()

    conflicts = session.counters()["aborts_conflict"] - conflicts_before
    print(f"   conflict aborts during drawing: {conflicts} (blind writes never fail)")

    print("\n-- a latecomer joins through an invitation --")
    dee = session.add_site("artist3")
    assoc = ann.objects["s0:board.assoc"]
    dee_assoc = dee.import_invitation(assoc.make_invitation(), "board.assoc")
    session.settle()
    dee_board_obj = dee.create_map("board")
    dee.join(dee_assoc, "board.rel", dee_board_obj)
    session.settle()
    dee_board = Whiteboard(dee, dee_board_obj)
    print(f"   {dee.name} sees {len(dee_board.shapes())} shapes immediately after joining")
    assert dee_board.shapes() == boards[0].shapes()

    print("\n-- and can draw; everyone converges --")
    dee_board.draw("star", 42, 42, color="gold", shape_id="star")
    session.settle()
    assert all(b.shapes() == dee_board.shapes() for b in boards)
    print(f"   final canvas: {sorted(dee_board.shapes())}")
    print("\nOK: convergent, conflict-free, late-join capable.")


if __name__ == "__main__":
    main()
