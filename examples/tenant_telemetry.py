#!/usr/bin/env python3
"""Per-tenant windowed telemetry over 100+ concurrent collaboration sets.

Run with no arguments::

    PYTHONPATH=src python examples/tenant_telemetry.py

The paper's scalability argument (§5.1.3) is that commit cost is per
*collaboration set*, not global — so this example checks the telemetry
plane holds up the same way.  It simulates a fleet of collaboration sets
(default 120 replicated counters, one per "document"), each touched by
transactions from several sites, with the event bus recording and a
:class:`~repro.obs.agg.TenantTelemetry` subscriber deriving per-tenant
commit counts, commit latency sketches, and notify lag — bucketed into
tumbling time windows by :class:`~repro.obs.agg.TelemetryAggregator`.

To mirror the multi-process deployment (``repro top`` fusing per-process
``agg*.json`` files), the run is split across **two** aggregators — one
per half of the sites — and their JSON snapshots are fused with
:func:`~repro.obs.agg.merge_agg_snapshots` at the end.  The example
asserts every collaboration set survives the split/merge pipeline, then
prints the busiest tenants with their windowed quantiles.

Exit status 0 when all tenants are present in the merged rollup with
consistent commit totals (used as a smoke check), 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import DInt, Session  # noqa: E402
from repro.obs import (  # noqa: E402
    TelemetryAggregator,
    TenantTelemetry,
    merge_agg_snapshots,
)


def run(tenants: int, txns_per_tenant: int, window_ms: float, as_json: bool) -> int:
    session = Session.simulated(latency_ms=20.0)
    session.observe()
    sites = session.add_sites(3)

    # Two aggregators stand in for two OS processes: telemetry for
    # transactions originating at sites 0-1 lands in the first, site 2's
    # in the second.  Both see the same bus; the split is by origin.
    aggs = [
        TelemetryAggregator(window_ms=window_ms, keep_windows=10_000, site=0),
        TelemetryAggregator(window_ms=window_ms, keep_windows=10_000, site=1),
    ]

    # Internal object names look like "s0:doc017.assoc"; collapse every
    # sub-object onto its document so one document == one tenant.
    # Returning None defers attribution until an event carries an obj.
    def tenant_of(event):
        obj = event.data.get("obj")
        if obj is None:
            return None
        doc = str(obj).split(":", 1)[-1].split(".", 1)[0]
        return f"doc:{doc}"

    telemetries = [
        TenantTelemetry(aggs[0], tenant_of=tenant_of, max_txns=65536),
        TenantTelemetry(aggs[1], tenant_of=tenant_of, max_txns=65536),
    ]

    # Route each event stream by transaction origin so the two aggregators
    # hold disjoint shards, like two processes would.
    def route(event):
        if event.txn_vt is None:
            return
        target = 0 if event.txn_vt.site < 2 else 1
        telemetries[target](event)

    session.bus.subscribe(route)

    objs_by_tenant = []
    for t in range(tenants):
        objs = session.replicate(DInt, f"doc{t:03d}", sites, initial=0)
        objs_by_tenant.append(objs)
    session.settle()

    outcomes = []
    for round_no in range(txns_per_tenant):
        for t, objs in enumerate(objs_by_tenant):
            site_idx = (t + round_no) % len(sites)
            outcomes.append(
                sites[site_idx].transact(
                    lambda o=objs[site_idx], v=round_no: o.set(v + 1)
                )
            )
        session.settle()
    # Outcomes flip committed asynchronously (summary commit), so tally
    # only after the network has fully drained.
    committed = sum(1 for out in outcomes if out.committed)

    snapshots = [agg.snapshot() for agg in aggs]
    merged = merge_agg_snapshots(*snapshots)

    # Every collaboration set must survive the shard/merge pipeline, and
    # the merged commit total must equal the per-shard sum.
    merged_tenants = sorted({t for w in merged["windows"] for t in w["tenants"]})
    merged_commits = sum(
        cell["counters"].get("commits", 0)
        for w in merged["windows"]
        for cell in w["tenants"].values()
    )
    shard_commits = sum(
        cell["counters"].get("commits", 0)
        for snap in snapshots
        for w in snap["windows"]
        for cell in w["tenants"].values()
    )

    per_tenant = {}
    for window in merged["windows"]:
        for tenant, cell in window["tenants"].items():
            row = per_tenant.setdefault(tenant, {"commits": 0, "p50": 0.0, "p99": 0.0})
            row["commits"] += cell["counters"].get("commits", 0)
            q = cell.get("quantiles", {}).get("commit_latency_ms")
            if q:
                row["p50"], row["p99"] = q["p50"], q["p99"]

    ok = (
        len(merged_tenants) >= tenants
        and merged_commits == shard_commits
        and merged_commits > 0
    )

    if as_json:
        print(
            json.dumps(
                {
                    "tenants": len(merged_tenants),
                    "windows": len(merged["windows"]),
                    "window_ms": window_ms,
                    "committed": committed,
                    "merged_commits": merged_commits,
                    "ok": ok,
                },
                indent=2,
            )
        )
    else:
        print(
            f"{len(merged_tenants)} collaboration sets, "
            f"{len(merged['windows'])} windows of {window_ms:.0f} ms, "
            f"{merged_commits} commits merged from {len(aggs)} shards"
        )
        busiest = sorted(per_tenant.items(), key=lambda kv: -kv[1]["commits"])[:10]
        print(f"\n{'tenant':<16} {'commits':>8} {'p50 ms':>9} {'p99 ms':>9}")
        for tenant, row in busiest:
            print(
                f"{tenant:<16} {row['commits']:>8} {row['p50']:>9.2f} {row['p99']:>9.2f}"
            )
        print(f"... and {max(0, len(per_tenant) - 10)} more tenants")
        print("OK" if ok else "MISMATCH: tenants or commit totals lost in merge")
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tenants", type=int, default=120,
        help="concurrent collaboration sets (default 120; the point is >=100)",
    )
    parser.add_argument(
        "--txns-per-tenant", type=int, default=3,
        help="transactions per collaboration set (default 3)",
    )
    parser.add_argument(
        "--window-ms", type=float, default=1000.0,
        help="aggregation window width in simulated ms (default 1000)",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable summary")
    args = parser.parse_args(argv)
    return run(args.tenants, args.txns_per_tenant, args.window_ms, args.json)


if __name__ == "__main__":
    sys.exit(main())
