#!/usr/bin/env python3
"""Two OS processes collaborating on one replicated list over real TCP.

Run with no arguments::

    PYTHONPATH=src python examples/two_process_tcp.py

The parent picks two free ports, then spawns two child processes:

* **site 0** hosts the list, creates the association/relationship, joins,
  and drops a wire-codec-encoded :class:`~repro.core.Invitation` into a
  handoff file;
* **site 1** picks up the invitation, imports it, and joins its own local
  list through the real join protocol — every message crossing the process
  boundary as length-prefixed wire-codec frames over
  :class:`~repro.transport.tcp.TcpTransport`.

Each child then appends its own marked integers, waits until the committed
list holds everyone's entries, and writes its ``state_digest()`` to a file.
The parent compares the digests byte-for-byte: identical digests mean the
two processes converged on identical committed state.  Exit status 0 on
convergence, 1 on timeout/mismatch (used as a CI smoke test).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Session  # noqa: E402
from repro.obs import (  # noqa: E402
    FlightRecorder,
    TelemetryAggregator,
    TenantTelemetry,
    TraceSampler,
    event_to_dict,
    write_prometheus,
)
from repro.transport.tcp import TcpTransport  # noqa: E402
from repro.vtime import VirtualTime  # noqa: E402
from repro.wire import decode, encode  # noqa: E402

APPENDS_PER_SITE = 5
CHILD_DEADLINE_S = 60.0
PROM_FLUSH_S = 0.5


# ---------------------------------------------------------------------------
# Child: one site in one process
# ---------------------------------------------------------------------------


async def poll(predicate, deadline_s: float, what: str, interval_s: float = 0.02):
    start = time.monotonic()
    while not predicate():
        if time.monotonic() - start > deadline_s:
            raise TimeoutError(f"timed out waiting for {what}")
        await asyncio.sleep(interval_s)


async def child_main(
    site_id: int,
    ports: list,
    workdir: Path,
    appends: int = APPENDS_PER_SITE,
    trace_dir: Path = None,
    sample_rate: float = -1.0,
) -> None:
    addrs = {i: ("127.0.0.1", port) for i, port in enumerate(ports)}
    # --sample-rate: install a head-based trace sampler.  Both processes
    # configure the same rate, and each transaction's decision is made
    # once at its origin and rides the frame header, so the two processes
    # record exactly the same subset of traces (complete span trees).
    sampler = TraceSampler(sample_rate) if sample_rate >= 0.0 else None
    transport = TcpTransport(
        addrs, local_sites={site_id}, fail_after_ms=30_000.0, sampler=sampler
    )
    session = Session(transport=transport, roster=set(addrs), batching=True)
    site = session.add_site(f"proc{site_id}", site_id=site_id)

    # --trace-dir: record this process's full wall-clock timeline (session
    # protocol events + transport send/deliver events share transport.bus),
    # arm the postmortem flight recorder, keep a live Prometheus snapshot
    # refreshed while the run progresses, and roll up per-tenant windowed
    # telemetry (agg{N}.json) that `repro top` can tail.
    prom_task = None
    telemetry = None
    if trace_dir is not None:
        transport.bus.enable()
        transport.flight = FlightRecorder(str(trace_dir / f"flight{site_id}.jsonl"))
        transport.flight.attach(transport.bus)
        transport.flight.install_excepthook()
        telemetry = TenantTelemetry(
            TelemetryAggregator(window_ms=1000.0, keep_windows=64, site=site_id)
        )
        transport.bus.subscribe(telemetry)
        prom_path = str(trace_dir / f"metrics{site_id}.prom")
        snapshot_fns = [transport.metrics.snapshot, site.metrics.snapshot]
        from repro.obs.prom import flush_periodically

        prom_task = asyncio.ensure_future(
            flush_periodically(prom_path, snapshot_fns, interval_s=PROM_FLUSH_S)
        )
    await transport.start()

    invite_file = workdir / "invitation.hex"
    name = "doc"
    rel_id = f"{name}.rel"
    horizon = VirtualTime(2**62, 2**30)

    def committed(outcome) -> bool:
        if outcome.aborted_no_retry:
            raise RuntimeError("transaction aborted without retry")
        return outcome.committed

    if site_id == 0:
        lst = site.create_list(name)
        assoc = site.create_association(f"{name}.assoc")
        outcome = site.transact(lambda: assoc.create_relationship(rel_id))
        await poll(lambda: committed(outcome), CHILD_DEADLINE_S, "create_relationship")
        outcome = site.join(assoc, rel_id, lst)
        await poll(lambda: committed(outcome), CHILD_DEADLINE_S, "owner join")
        invitation = assoc.make_invitation(note="two-process demo")
        invite_file.write_text(encode(invitation).hex())
        # Wait until the peer's join lands: the list's replication graph
        # grows to cover both sites.
        await poll(
            lambda: {n.site for n in lst.graph().nodes} == set(addrs),
            CHILD_DEADLINE_S,
            "peer join",
        )
    else:
        await poll(invite_file.exists, CHILD_DEADLINE_S, "invitation file")
        invitation = decode(bytes.fromhex(invite_file.read_text()))
        local_assoc = site.import_invitation(invitation, f"{name}.assoc")
        # The association's value (all relationship memberships) arrives with
        # the join state sync; wait until the relationship is visible here.
        await poll(
            lambda: rel_id in dict(local_assoc.value_at(horizon, committed_only=True)),
            CHILD_DEADLINE_S,
            "association state sync",
        )
        lst = site.create_list(name)
        outcome = site.join(local_assoc, rel_id, lst)
        await poll(lambda: committed(outcome), CHILD_DEADLINE_S, "member join")

    # Both processes append their own marked entries concurrently.  The loop
    # is timed so bench mode can derive real-socket commits/sec; the tight
    # poll interval keeps the measurement about the protocol, not the poll.
    append_start = time.perf_counter()
    for k in range(appends):
        value = site_id * 1000 + k
        outcome = site.transact(lambda v=value: lst.append("int", v))
        await poll(
            lambda o=outcome: committed(o),
            CHILD_DEADLINE_S,
            f"append {value}",
            interval_s=0.002,
        )
    append_wall_s = time.perf_counter() - append_start

    # Convergence: the committed list holds every site's entries.
    want = appends * len(addrs)

    def committed_len() -> int:
        return len(lst.value_at(horizon, committed_only=True))

    await poll(lambda: committed_len() == want, CHILD_DEADLINE_S, "converged list")
    await transport.aquiesce(settle_ms=300.0)

    digest = {key: [list(vt_key), value] for key, (vt_key, value) in site.state_digest().items()}
    out = {
        "site": site_id,
        "digest": digest,
        "committed_len": committed_len(),
        "appends": appends,
        "append_wall_s": append_wall_s,
        "wire": {
            "messages_sent": site.outbox.messages_sent,
            "envelopes_sent": site.outbox.envelopes_sent,
            "messages_batched": site.outbox.messages_batched,
            "frames_sent": transport.frames_sent,
            "frames_received": transport.frames_received,
            "sends_sampled_out": transport.sends_sampled_out,
            "deliveries_sampled_out": transport.deliveries_sampled_out,
        },
    }
    (workdir / f"digest{site_id}.json").write_text(json.dumps(out, sort_keys=True))

    if trace_dir is not None:
        lines = [
            json.dumps(event_to_dict(e), sort_keys=True)
            for e in transport.bus.events
        ]
        (trace_dir / f"trace{site_id}.jsonl").write_text(
            "\n".join(lines) + ("\n" if lines else "")
        )
    if telemetry is not None:
        (trace_dir / f"agg{site_id}.json").write_text(telemetry.agg.to_json())
    if prom_task is not None:
        prom_task.cancel()
        try:
            await prom_task
        except asyncio.CancelledError:
            pass
    await transport.stop()


# ---------------------------------------------------------------------------
# Parent: orchestrate, compare digests
# ---------------------------------------------------------------------------


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def parent_main(
    appends: int = APPENDS_PER_SITE,
    bench_out: str = "",
    trace_dir: str = "",
    sample_rate: float = -1.0,
) -> int:
    ports = [free_port(), free_port()]
    if trace_dir:
        Path(trace_dir).mkdir(parents=True, exist_ok=True)
    with tempfile.TemporaryDirectory(prefix="repro-tcp-") as tmp:
        workdir = Path(tmp)
        children = [
            subprocess.Popen(
                [
                    sys.executable,
                    __file__,
                    "--role", "child",
                    "--site", str(site_id),
                    "--ports", ",".join(map(str, ports)),
                    "--workdir", str(workdir),
                    "--appends", str(appends),
                    "--sample-rate", str(sample_rate),
                ]
                + (["--trace-dir", trace_dir] if trace_dir else []),
                env=os.environ.copy(),
            )
            for site_id in (0, 1)
        ]
        deadline = time.monotonic() + CHILD_DEADLINE_S + 30.0
        for child in children:
            remaining = max(1.0, deadline - time.monotonic())
            try:
                code = child.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                for c in children:
                    c.kill()
                print("FAIL: child process timed out")
                return 1
            if code != 0:
                for c in children:
                    c.kill()
                print(f"FAIL: child exited with status {code}")
                return 1

        reports = [
            json.loads((workdir / f"digest{site_id}.json").read_text())
            for site_id in (0, 1)
        ]
        if reports[0]["digest"] != reports[1]["digest"]:
            print("FAIL: state digests differ between processes")
            print(json.dumps(reports, indent=2, sort_keys=True))
            return 1
        print(
            f"OK: both processes converged on {reports[0]['committed_len']} committed "
            f"entries with identical state digests"
        )
        for report in reports:
            wire = report["wire"]
            sampled = ""
            if wire.get("sends_sampled_out") or wire.get("deliveries_sampled_out"):
                sampled = (
                    f", {wire['sends_sampled_out']} sends / "
                    f"{wire['deliveries_sampled_out']} deliveries sampled out"
                )
            print(
                f"  site {report['site']}: {wire['messages_sent']} protocol messages in "
                f"{wire['envelopes_sent']} frames "
                f"({wire['messages_batched']} coalesced), "
                f"{wire['frames_sent']} TCP frames out / {wire['frames_received']} in"
                + sampled
            )
        if bench_out:
            # Both sites run their append loops concurrently: total commits
            # over the slower site's wall time is the real-socket commit rate.
            total_commits = sum(r["appends"] for r in reports)
            wall_s = max(r["append_wall_s"] for r in reports)
            bench = {
                "commits": total_commits,
                "wall_s": round(wall_s, 6),
                "commits_per_sec": round(total_commits / wall_s, 1),
                "frames_sent": sum(r["wire"]["frames_sent"] for r in reports),
            }
            Path(bench_out).write_text(json.dumps(bench, sort_keys=True) + "\n")
        if trace_dir:
            traces = sorted(Path(trace_dir).glob("trace*.jsonl"))
            print(
                f"  per-process timelines in {trace_dir}: "
                + ", ".join(t.name for t in traces)
                + "  (merge with: repro trace --merge "
                + " ".join(str(t) for t in traces)
                + " --format jsonl --out merged.jsonl)"
            )
        return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--role", choices=["parent", "child"], default="parent")
    parser.add_argument("--site", type=int, default=0)
    parser.add_argument("--ports", default="")
    parser.add_argument("--workdir", default="")
    parser.add_argument("--appends", type=int, default=APPENDS_PER_SITE)
    parser.add_argument(
        "--bench-out",
        default="",
        metavar="FILE",
        help="write commits/sec for the timed append phase as JSON",
    )
    parser.add_argument(
        "--trace-dir",
        default="",
        metavar="DIR",
        help="record per-process wall-clock timelines (trace{N}.jsonl), "
        "flight-recorder postmortems, live Prometheus snapshots "
        "(metrics{N}.prom), and per-tenant windowed rollups (agg{N}.json) "
        "into DIR; merge afterwards with `repro trace --merge`, watch "
        "live with `repro top --dir DIR`",
    )
    parser.add_argument(
        "--sample-rate",
        type=float,
        default=-1.0,
        metavar="RATE",
        help="head-based trace sampling rate in [0,1] (default: no sampler "
        "— record every traced frame); the origin's per-transaction "
        "decision rides the frame header so both processes record the "
        "same subset",
    )
    args = parser.parse_args()
    if args.role == "parent":
        return parent_main(
            appends=args.appends,
            bench_out=args.bench_out,
            trace_dir=args.trace_dir,
            sample_rate=args.sample_rate,
        )
    ports = [int(p) for p in args.ports.split(",")]
    asyncio.run(
        child_main(
            args.site,
            ports,
            Path(args.workdir),
            appends=args.appends,
            trace_dir=Path(args.trace_dir) if args.trace_dir else None,
            sample_rate=args.sample_rate,
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
