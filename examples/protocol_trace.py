#!/usr/bin/env python3
"""Protocol trace: watch the paper's Fig. 5 message pattern live.

Recreates the worked example of section 3.1 — transaction T at site 2
reads W and X (replicated at sites 0,1,2; primary 0), blind-writes Y and
read-modify-writes Z (replicated at sites 1,2,3; primary 1) — and prints
every message the protocol sends, annotated with its role.

Run:  python examples/protocol_trace.py
"""

from repro import Session
from repro.sim.trace import MessageTrace
from repro import DInt


def main():
    print("== DECAF protocol trace: the paper's Fig. 4/5 example ==\n")
    session = Session.simulated(latency_ms=50.0, delegation_enabled=False)
    trace = MessageTrace(session.network)
    s0, s1, s2, s3 = session.add_sites(4)

    w = session.replicate(DInt, "W", [s0, s1, s2], initial=4)
    x = session.replicate(DInt, "X", [s0, s1, s2], initial=2)
    y = session.replicate(DInt, "Y", [s1, s2, s3], initial=3)
    z = session.replicate(DInt, "Z", [s1, s2, s3], initial=6)
    session.settle()
    trace.clear()  # drop the establishment traffic

    print("Transaction T at site 2:")
    print("   if W + X > 5 then { Y := X;  Z := Z + 3 }\n")

    def T():
        if w[2].get() + x[2].get() > 5:
            y[1].set(x[2].get())          # blind write of Y
            z[1].set(z[1].get() + 3)      # read-modify-write of Z

    out = s2.transact(T)
    session.settle()

    role = {
        "TxnPropagateMsg": "WRITE / CONFIRM-READ batch",
        "ConfirmMsg": "primary confirms RL/NC guesses",
        "CommitMsg": "summary commit from the origin",
        "AbortMsg": "summary abort",
    }
    print("-- every message of transaction T --")
    for entry in trace.transaction_story(out.vt):
        print(f"   {entry.render():60s} | {role.get(entry.msg_type, '')}")

    print("\n-- counts --")
    for msg_type, count in sorted(trace.counts_by_type().items()):
        print(f"   {msg_type:20s} {count}")

    print(f"\ncommitted: {out.committed}   commit latency: {out.commit_latency_ms:.0f} ms (= 2t)")
    print(f"final values: Y = {[o.get() for o in y]}, Z = {[o.get() for o in z]}")
    assert out.committed and out.commit_latency_ms == 100.0
    assert all(o.get() == 2 for o in y) and all(o.get() == 9 for o in z)
    print("\nOK: the message pattern matches the paper's Fig. 5.")


if __name__ == "__main__":
    main()
