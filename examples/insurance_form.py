#!/usr/bin/env python3
"""Collaborative insurance form: pessimistic audit views and authorization.

The paper's flagship application domain (section 5.2.1): an insurance agent
helps a client fill out a form.  The *working* copies update optimistically
for responsiveness, while an auditor site attaches a PESSIMISTIC view that
records only committed, monotonically ordered form states — a faithful
advice-session audit trail that can never show rolled-back data.  The
premium field is protected by an authorization monitor so only the agent
can write it.

Run:  python examples/insurance_form.py
"""

from repro import Session
from repro.apps import FormDocument
from repro.core.auth import PredicateMonitor
from repro import DMap


def main():
    print("== DECAF collaborative insurance form ==\n")
    session = Session.simulated(latency_ms=40.0)
    agent, client, auditor = session.add_sites(3, prefix="party")
    forms_objs = session.replicate(DMap, "policy", [agent, client, auditor])
    agent_form = FormDocument(agent, forms_objs[0])
    client_form = FormDocument(client, forms_objs[1])
    audit_form = FormDocument(auditor, forms_objs[2])  # pessimistic audit view

    print("-- the auditor's replica is write-protected (authorization monitor) --")
    audit_form.protect(
        PredicateMonitor(write=lambda principal, obj: principal != auditor.principal)
    )
    denied = audit_form.fill(premium=1)
    print(f"   auditor write attempt committed: {denied.committed} "
          f"({denied.abort_reason.split(':')[0]})")
    assert denied.aborted_no_retry

    print("\n-- client fills personal data; agent fills the quote, concurrently --")
    out1 = client_form.fill(name="Ada Lovelace", age=36, vehicle="brougham")
    out2 = agent_form.fill(product="auto-comprehensive", premium=1234)
    session.settle()
    print(f"   client txn committed: {out1.committed}; agent txn committed: {out2.committed}")

    print("\n-- all three replicas agree --")
    for name, form in (("agent", agent_form), ("client", client_form), ("auditor", audit_form)):
        fields = form.fields()
        print(f"   {name:8s}: {dict(sorted(fields.items()))}")
    assert agent_form.fields() == client_form.fields() == audit_form.fields()

    print("\n-- the audit trail saw only committed states, in order --")
    for i, state in enumerate(audit_form.audit_trail()):
        print(f"   audit[{i}]: {dict(sorted(state.items()))}")
    trail = audit_form.audit_trail()
    # Monotonic: field sets only grow in this scenario.
    for earlier, later in zip(trail, trail[1:]):
        assert set(earlier) <= set(later)

    print("\n-- a correction: one atomic transaction updates two fields --")
    agent_form.fill(premium=1180, discount="safe-driver")
    session.settle()
    final = audit_form.audit_trail()[-1]
    assert final["premium"] == 1180 and final["discount"] == "safe-driver"
    print(f"   final audited state: {dict(sorted(final.items()))}")
    print("\nOK: responsive optimistic editing, committed-only audit trail.")


if __name__ == "__main__":
    main()
