#!/usr/bin/env python3
"""Failure handling: a client crashes mid-collaboration (paper section 3.4).

Three users share a counter.  The site hosting the PRIMARY copy crashes
while a transaction from another site is still waiting for its
confirmation.  The survivors: (1) resolve the failed site's in-flight
transactions by checking who logged a commit, (2) repair the replication
graphs by consensus (the failed site WAS the primary — the circularity
case), and (3) automatically re-execute the blocked transaction under the
newly implied primary.

Run:  python examples/failover.py
"""

from repro import Session
from repro.sim.network import FixedLatency
from repro import DInt


def main():
    print("== DECAF failure handling demo ==\n")
    session = Session.simulated(latency_ms=30.0, delegation_enabled=False)
    s0, s1, s2 = session.add_sites(3, prefix="user")
    counters = session.replicate(DInt, "counter", [s0, s1, s2], initial=0)
    session.settle()

    print(f"-- replication graph: sites {counters[1].graph().sites()}, "
          f"primary at site {counters[1].primary_site()} ({s0.name}) --")

    s1.transact(lambda: counters[1].set(10))
    session.settle()
    print(f"   normal update: all replicas = "
          f"{[o.get() for o in counters]}")

    print(f"\n-- {s0.name} (the primary!) goes dark while {s2.name}'s "
          f"transaction is awaiting confirmation --")
    # Confirmations from the primary to s2 are stuck in a dead link.
    session.network.set_link_latency(0, 2, FixedLatency(1_000_000.0))
    blocked = s2.transact(lambda: counters[2].set(20))
    session.run_for(100)
    print(f"   before failure: committed={blocked.committed} "
          f"(waiting on site 0)")
    session.network.fail_site(0)
    session.settle()

    print(f"   after failover: committed={blocked.committed} "
          f"(attempts={blocked.attempts}, re-executed under new primary)")
    print(f"   repaired graph: sites {counters[1].graph().sites()}, "
          f"new primary at site {counters[1].primary_site()}")
    print(f"   survivor replicas: s1={counters[1].get()} s2={counters[2].get()}")
    assert blocked.committed
    assert counters[1].get() == counters[2].get() == 20
    assert counters[1].graph().sites() == [1, 2]

    print(f"\n-- collaboration continues among the survivors --")
    out = s1.transact(lambda: counters[1].set(counters[1].get() + 1))
    session.settle()
    print(f"   increment committed={out.committed}; replicas: "
          f"s1={counters[1].get()} s2={counters[2].get()}")
    assert counters[1].get() == counters[2].get() == 21
    print("\nOK: fail-stop crash of a primary handled; no state lost.")


if __name__ == "__main__":
    main()
