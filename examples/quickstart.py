#!/usr/bin/env python3
"""Quickstart: the paper's account-transfer example (Figs. 2 and 3).

Two collaborating applications (an insurance agent and a client) share two
account balances.  A transfer transaction atomically moves money between
them; an optimistic BalanceView shows updates immediately (rendered "red"
until committed, then "black" — exactly the paper's Fig. 3), while the
replicas stay consistent under the optimistic concurrency-control
protocol.

Run:  python examples/quickstart.py
"""

from repro import Session, View
from repro.apps import AccountBook, TransferTransaction
from repro import DFloat


class BalanceView(View):
    """The paper's Fig. 3 view: red while optimistic, black once committed."""

    def __init__(self, label, account, site):
        self.label = label
        self.account = account
        self.site = site
        self.color = "black"

    def update(self, changed, snapshot):
        self.color = "red"  # optimistic: not yet known committed
        value = snapshot.read(self.account)
        print(
            f"  [{self.site.name} t={self.site.transport.now():6.0f}ms] "
            f"{self.label} = {value:8.2f}  ({self.color})"
        )

    def commit(self):
        self.color = "black"
        print(
            f"  [{self.site.name} t={self.site.transport.now():6.0f}ms] "
            f"{self.label} committed      ({self.color})"
        )


def main():
    print("== DECAF quickstart: replicated account transfer ==\n")

    # A simulated two-site collaboration with 50 ms one-way latency.
    session = Session.simulated(latency_ms=50.0)
    agent, client = session.add_sites(2, prefix="user")

    # Replicate two account objects between the sites (runs the real
    # association/invitation/join protocol of the paper's section 2.6).
    checking = session.replicate(DFloat, "checking", [agent, client], initial=1000.0)
    savings = session.replicate(DFloat, "savings", [agent, client], initial=250.0)

    agent_book = AccountBook(agent, prefix="agent")
    agent_book.adopt("checking", checking[0])
    agent_book.adopt("savings", savings[0])
    client_book = AccountBook(client, prefix="client")
    client_book.adopt("checking", checking[1])
    client_book.adopt("savings", savings[1])

    # The client watches both balances through optimistic views.
    checking[1].attach(BalanceView("checking", checking[1], client), "optimistic")
    savings[1].attach(BalanceView("savings", savings[1], client), "optimistic")

    print("\n-- the agent transfers 300 from checking to savings --")
    txn = agent_book.transfer("checking", "savings", 300.0)
    session.settle()
    print(f"   committed: {txn.outcome.committed}, attempts: {txn.outcome.attempts}")

    print("\n-- the client tries to over-transfer 5000 (aborts, no retry) --")
    txn = client_book.transfer("checking", "savings", 5000.0)
    session.settle()
    print(f"   committed: {txn.outcome.committed}")
    print(f"   handleAbort saw: {txn.abort_reason!r}")

    print("\n-- final state (both replicas identical) --")
    for book, name in ((agent_book, "agent"), (client_book, "client")):
        print(
            f"   {name:6s}: checking={book.balance('checking'):8.2f} "
            f"savings={book.balance('savings'):8.2f} total={book.total():8.2f}"
        )
    assert agent_book.balance("checking") == client_book.balance("checking")
    assert agent_book.total() == 1250.0
    print("\nOK: atomic, consistent, responsive.")


if __name__ == "__main__":
    main()
