"""Measure bounded-exhaustive schedule counts for the EXPERIMENTS.md table.

Writes JSON to stdout/--out: per config, full vs POR schedule counts,
distinct outcomes, wall time, and cross-check verdicts.  Entries whose full
enumeration is infeasible report POR-only numbers.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.explore.mc import explore
from repro.explore.plan import exhaustive_config

#: (name, sites, txns, views, enumerate_full).  The 3-site unreduced
#: spaces are out of reach (>20k schedules at ~11 ms per replay — see
#: EXPERIMENTS.md § "Exhaustive checking"), so those rows are POR-only.
CASES = [
    ("2s-2rmw", 2, [(0, "rmw"), (1, "rmw")], False, True),
    ("2s-2rmw+views", 2, [(0, "rmw"), (1, "rmw")], True, True),
    ("2s-2xfer", 2, [(0, "xfer"), (1, "xfer")], False, True),
    ("2s-3txn", 2, [(0, "rmw"), (1, "rmw"), (0, "blind")], False, True),
    ("3s-2rmw", 3, [(0, "rmw"), (1, "rmw")], False, False),
    ("3s-2rmw-remote", 3, [(1, "rmw"), (2, "rmw")], False, False),
]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None)
    args = parser.parse_args()

    rows = []
    for name, n, txns, views, do_full in CASES:
        cfg = exhaustive_config(n, txns, views=views)
        row = {"name": name, "n_sites": n, "txns": txns, "views": views}
        t0 = time.time()
        red = explore(cfg, por=True)
        row["por_schedules"] = red.stats.schedules
        row["por_pruned"] = red.stats.pruned
        row["por_seconds"] = round(time.time() - t0, 2)
        row["distinct_outcomes"] = red.stats.distinct_outcomes
        row["max_depth"] = red.stats.max_depth
        row["ok"] = red.ok
        if do_full:
            t0 = time.time()
            full = explore(cfg, por=False)
            row["full_schedules"] = full.stats.schedules
            row["full_seconds"] = round(time.time() - t0, 2)
            row["ratio"] = round(red.stats.schedules / full.stats.schedules, 4)
            row["violations_match"] = full.violation_keys() == red.violation_keys()
            row["outcomes_match"] = set(full.outcomes) == set(red.outcomes)
        rows.append(row)
        print(json.dumps(row), file=sys.stderr, flush=True)

    doc = json.dumps(rows, indent=2)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(doc + "\n")
    else:
        print(doc)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
