#!/usr/bin/env python
"""Dependency-free line-coverage probe for the ``repro`` package.

CI measures coverage with ``pytest-cov``; this probe exists for
environments where that plugin is not installed.  It runs the test
suite under a ``sys.settrace`` hook restricted to files below
``src/repro`` and reports per-file and total line coverage against the
set of executable lines (derived from compiled code objects), which
tracks coverage.py's line metric closely enough to sanity-check the
CI baseline locally.

Usage::

    PYTHONPATH=src python scripts/coverage_probe.py [pytest args...]

Exit status is pytest's.  Expect the traced run to be several times
slower than a plain ``pytest`` invocation.
"""

from __future__ import annotations

import os
import sys
import threading
from typing import Dict, Set

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
PACKAGE_ROOT = os.path.join(REPO_ROOT, "src", "repro")


def executable_lines(path: str) -> Set[int]:
    """All line numbers that carry bytecode in ``path``, incl. nested defs."""
    with open(path, "r") as fh:
        source = fh.read()
    lines: Set[int] = set()
    stack = [compile(source, path, "exec")]
    while stack:
        code = stack.pop()
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
        for _start, _end, lineno in code.co_lines():
            if lineno is not None:
                lines.add(lineno)
    return lines


def collect_targets() -> Dict[str, Set[int]]:
    targets: Dict[str, Set[int]] = {}
    for dirpath, _dirnames, filenames in os.walk(PACKAGE_ROOT):
        for name in sorted(filenames):
            if name.endswith(".py"):
                path = os.path.join(dirpath, name)
                targets[path] = executable_lines(path)
    return targets


def main(argv) -> int:
    targets = collect_targets()
    hits: Dict[str, Set[int]] = {path: set() for path in targets}
    prefix = PACKAGE_ROOT + os.sep

    def local_trace(frame, event, _arg):
        if event == "line":
            lines = hits.get(frame.f_code.co_filename)
            if lines is not None:
                lines.add(frame.f_lineno)
        return local_trace

    def global_trace(frame, event, _arg):
        if event == "call" and frame.f_code.co_filename.startswith(prefix):
            return local_trace
        return None

    import pytest

    threading.settrace(global_trace)
    sys.settrace(global_trace)
    try:
        status = pytest.main(argv or ["-q", "tests"])
    finally:
        sys.settrace(None)
        threading.settrace(None)

    total_lines = total_hit = 0
    print(f"\n{'file':<58} {'lines':>6} {'hit':>6} {'cover':>7}")
    for path in sorted(targets):
        lines = targets[path]
        hit = hits[path] & lines
        total_lines += len(lines)
        total_hit += len(hit)
        pct = 100.0 * len(hit) / len(lines) if lines else 100.0
        rel = os.path.relpath(path, REPO_ROOT)
        print(f"{rel:<58} {len(lines):>6} {len(hit):>6} {pct:>6.1f}%")
    pct = 100.0 * total_hit / total_lines if total_lines else 100.0
    print(f"{'TOTAL':<58} {total_lines:>6} {total_hit:>6} {pct:>6.1f}%")
    return int(status)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
