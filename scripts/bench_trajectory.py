#!/usr/bin/env python3
"""Merge per-area BENCH_*.json results into a per-commit trajectory.

Every perf-sensitive PR records its benchmark results in a ``BENCH_<area>.json``
file at the repo root (``bench_hotpaths.py``, ``bench_obs.py``, ...).  This
script flattens each file's numeric scalar leaves into dotted metric names
(``obs.overhead.recording_us_per_event``, ``hotpaths.history_read_at.1000
.speedup``, ...) and appends one sample per metric to ``BENCH_trajectory.json``,
keyed by the current commit — the repo's perf trajectory over its history::

    {
      "schema": "bench_trajectory/v1",
      "series": {
        "<metric>": [ {"commit": "<sha>", "timestamp": "...", "value": N}, ... ]
      }
    }

Re-running on the same commit replaces that commit's samples (idempotent),
so CI can regenerate the trajectory on every push.

``--gate CURRENT.json`` additionally enforces the zero-overhead contract in
CI: CURRENT.json is a freshly measured ``bench_obs.py`` result, and the gate
fails (exit 1) when its ``disabled_vs_baseline_pct`` exceeds the tolerance
recorded in the repo's committed ``BENCH_obs.json`` — ``max(5%,`` the
recorded ``baseline_noise_pct)``, the same bound ``bench_obs.py --check``
applies locally.  A regression of the disabled path past its recorded noise
floor is a hard CI failure, not a drift to discover later.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import subprocess
import sys
from typing import Any, Dict, List, Optional

TRAJECTORY_NAME = "BENCH_trajectory.json"
#: Floor of the disabled-path overhead gate, percent (matches bench_obs.py).
GATE_FLOOR_PCT = 5.0
#: Keys that are run provenance, not metrics.
_SKIP_KEYS = frozenset({"schema", "mode", "python", "timestamp"})


def flatten_metrics(value: Any, prefix: str) -> Dict[str, float]:
    """Numeric scalar leaves of a nested dict, as dotted metric names.

    Lists (e.g. raw ``wall_s`` sample arrays) and non-numeric leaves are
    skipped — the trajectory tracks derived statistics, not raw samples.
    """
    out: Dict[str, float] = {}
    if isinstance(value, dict):
        for key, child in sorted(value.items()):
            if not prefix and key in _SKIP_KEYS:
                continue
            name = f"{prefix}.{key}" if prefix else key
            out.update(flatten_metrics(child, name))
    elif isinstance(value, bool):
        pass
    elif isinstance(value, (int, float)):
        out[prefix] = float(value)
    return out


def current_commit(repo_root: str) -> str:
    try:
        return (
            subprocess.check_output(
                ["git", "rev-parse", "HEAD"], cwd=repo_root, stderr=subprocess.DEVNULL
            )
            .decode()
            .strip()
        )
    except (subprocess.CalledProcessError, OSError):
        return "unknown"


def collect_bench_files(repo_root: str) -> Dict[str, Dict[str, Any]]:
    """Map area name ('obs', 'hotpaths', ...) to its parsed BENCH file."""
    results: Dict[str, Dict[str, Any]] = {}
    for path in sorted(glob.glob(os.path.join(repo_root, "BENCH_*.json"))):
        name = os.path.basename(path)
        if name == TRAJECTORY_NAME:
            continue
        area = name[len("BENCH_"):-len(".json")].lower()
        with open(path) as fh:
            results[area] = json.load(fh)
    return results


def build_trajectory(repo_root: str, out_path: Optional[str] = None) -> Dict[str, Any]:
    """Merge all BENCH_*.json into the trajectory file; return it."""
    out_path = out_path or os.path.join(repo_root, TRAJECTORY_NAME)
    commit = current_commit(repo_root)
    if os.path.exists(out_path):
        with open(out_path) as fh:
            trajectory = json.load(fh)
    else:
        trajectory = {"schema": "bench_trajectory/v1", "series": {}}
    series: Dict[str, List[Dict[str, Any]]] = trajectory.setdefault("series", {})

    for area, doc in collect_bench_files(repo_root).items():
        timestamp = doc.get("timestamp", "")
        for metric, value in flatten_metrics(doc, area).items():
            samples = series.setdefault(metric, [])
            # Idempotent per commit: replace this commit's prior sample.
            samples[:] = [s for s in samples if s.get("commit") != commit]
            samples.append({"commit": commit, "timestamp": timestamp, "value": value})

    with open(out_path, "w") as fh:
        json.dump(trajectory, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return trajectory


def gate_obs_overhead(repo_root: str, current_path: str) -> int:
    """Fail (1) if CURRENT's disabled-path overhead exceeds the recorded gate."""
    recorded_path = os.path.join(repo_root, "BENCH_obs.json")
    if not os.path.exists(recorded_path):
        print("gate: no recorded BENCH_obs.json; nothing to gate against")
        return 0
    with open(recorded_path) as fh:
        recorded = json.load(fh)
    with open(current_path) as fh:
        current = json.load(fh)
    try:
        current_pct = abs(float(current["overhead"]["disabled_vs_baseline_pct"]))
        emit_calls = int(current["modes"]["disabled"]["emit_calls"])
    except (KeyError, TypeError, ValueError) as exc:
        print(f"gate: malformed current result {current_path}: {exc}")
        return 1
    noise_pct = float(recorded.get("overhead", {}).get("baseline_noise_pct", 0.0))
    allowed_pct = max(GATE_FLOOR_PCT, noise_pct)
    ok = True
    if emit_calls != 0:
        print(f"gate FAIL: disabled path made {emit_calls} emit() calls (must be 0)")
        ok = False
    if current_pct > allowed_pct:
        print(
            f"gate FAIL: disabled-path overhead {current_pct:.2f}% exceeds "
            f"allowed {allowed_pct:.2f}% (floor {GATE_FLOOR_PCT:.1f}%, recorded "
            f"baseline noise {noise_pct:.2f}%)"
        )
        ok = False
    else:
        print(
            f"gate OK: disabled-path overhead {current_pct:.2f}% within "
            f"{allowed_pct:.2f}% (floor {GATE_FLOOR_PCT:.1f}%, recorded noise "
            f"{noise_pct:.2f}%)"
        )
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repo-root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root holding the BENCH_*.json files",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help=f"trajectory output path (default <repo-root>/{TRAJECTORY_NAME})",
    )
    parser.add_argument(
        "--gate",
        metavar="CURRENT.json",
        help="also gate a freshly measured bench_obs result against the "
        "overhead tolerance recorded in the committed BENCH_obs.json",
    )
    args = parser.parse_args(argv)

    trajectory = build_trajectory(args.repo_root, args.out)
    metrics = len(trajectory["series"])
    samples = sum(len(s) for s in trajectory["series"].values())
    out_path = args.out or os.path.join(args.repo_root, TRAJECTORY_NAME)
    print(f"trajectory: {metrics} metrics, {samples} samples -> {out_path}")

    if args.gate:
        return gate_obs_overhead(args.repo_root, args.gate)
    return 0


if __name__ == "__main__":
    sys.exit(main())
